/**
 * @file
 * Experiment-driver walkthrough: declare a small workloads x schemes
 * matrix, execute it in parallel with per-cell streaming progress,
 * then capture one workload to an on-disk .acictrace file and show
 * that a trace-file WorkloadEntry (the same kind `acic_run import`
 * produces) replayed through the driver reproduces the in-memory
 * results exactly.
 *
 * Usage: experiment_matrix [instructions] (default 200000)
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "driver/emitters.hh"
#include "driver/experiment.hh"
#include "trace/io.hh"

using namespace acic;

int
main(int argc, char **argv)
{
    ExperimentSpec spec;
    spec.workloads = {Workloads::byName("web_search"),
                      Workloads::byName("media_streaming"),
                      Workloads::byName("tpcc")};
    spec.schemes = parseSchemeList("lru,srrip,acic,opt");
    spec.instructions =
        argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1]))
                 : 200'000;
    spec.threads = 4;

    std::printf("running a %zux%zu matrix on %u threads...\n",
                spec.workloads.size(), spec.schemes.size(),
                spec.threads);
    ExperimentDriver driver(spec);
    const auto cells = driver.run([&](const CellResult &cell) {
        std::printf("  finished %s / %s: mpki %.2f\n",
                    spec.workloads[cell.workloadIndex]
                        .name()
                        .c_str(),
                    schemeName(spec.schemes[cell.schemeIndex])
                        .c_str(),
                    cell.result.mpki());
    });

    std::ostringstream csv;
    writeResultsCsv(csv, driver.spec(), cells);
    std::printf("\nCSV emitter output:\n%s", csv.str().c_str());

    // Round-trip one workload through the on-disk trace format.
    const std::string path = "web_search.acictrace";
    {
        auto params = spec.workloads[0].params;
        params.instructions = spec.instructions;
        SyntheticWorkload synth(params);
        std::printf("\nrecording %s (%llu instructions)...\n",
                    path.c_str(),
                    static_cast<unsigned long long>(
                        recordTrace(synth, path)));
    }
    // A trace-file entry runs through the same driver as synthetic
    // presets — matrices can mix both sources freely.
    ExperimentSpec replay_spec;
    replay_spec.workloads = {
        WorkloadEntry::traceFile("web_search", path)};
    replay_spec.schemes = {parseScheme("acic")};
    replay_spec.threads = 1;
    const SimResult from_disk =
        ExperimentDriver(replay_spec).run()[0].result;
    const SimResult in_memory = cells[2].result; // web_search/ACIC
    std::printf("ACIC on web_search: %llu cycles in memory, "
                "%llu cycles from disk -> %s\n",
                static_cast<unsigned long long>(in_memory.cycles),
                static_cast<unsigned long long>(from_disk.cycles),
                in_memory.cycles == from_disk.cycles
                    ? "bit-identical"
                    : "MISMATCH");
    std::remove(path.c_str());
    return in_memory.cycles == from_disk.cycles ? 0 : 1;
}
