/**
 * @file
 * Tests of the on-disk trace subsystem: varint/zigzag primitives,
 * write->read round-trips (including after reset(), the
 * re-iterability contract), header metadata, compactness of the
 * encoding, and the MemoryTraceSource sharing primitive.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "trace/io.hh"
#include "trace/memory.hh"
#include "trace/synthetic.hh"
#include "trace/workload_params.hh"

using namespace acic;

namespace {

/** Unique-ish temp path per test, removed on destruction. */
class TempTracePath
{
  public:
    explicit TempTracePath(const std::string &tag)
        : path_("acic_test_" + tag + TraceFormat::suffix())
    {
        std::remove(path_.c_str());
    }
    ~TempTracePath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

WorkloadParams
tinyParams(std::uint64_t instructions = 30'000)
{
    auto p = Workloads::byName("web_search");
    p.instructions = instructions;
    return p;
}

std::vector<TraceInst>
drain(TraceSource &src)
{
    std::vector<TraceInst> out;
    TraceInst inst;
    while (src.next(inst))
        out.push_back(inst);
    return out;
}

void
expectSameStream(const std::vector<TraceInst> &a,
                 const std::vector<TraceInst> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].pc, b[i].pc) << "record " << i;
        ASSERT_EQ(a[i].nextPc, b[i].nextPc) << "record " << i;
        ASSERT_EQ(static_cast<int>(a[i].kind),
                  static_cast<int>(b[i].kind))
            << "record " << i;
        ASSERT_EQ(a[i].taken, b[i].taken) << "record " << i;
    }
}

} // namespace

TEST(Zigzag, RoundTripsSignedDeltas)
{
    for (const std::int64_t v :
         {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
          std::int64_t{4096}, std::int64_t{-4096},
          std::int64_t{1} << 40, -(std::int64_t{1} << 40),
          std::numeric_limits<std::int64_t>::max(),
          std::numeric_limits<std::int64_t>::min()}) {
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
    }
    // Small magnitudes must encode small (varint-friendly).
    EXPECT_LT(zigzagEncode(-1), 2u);
    EXPECT_LT(zigzagEncode(63), 127u);
}

TEST(TraceIo, RoundTripEqualsOriginalStream)
{
    TempTracePath path("roundtrip");
    SyntheticWorkload synth(tinyParams());
    const auto original = drain(synth);
    synth.reset();

    const std::uint64_t written = recordTrace(synth, path.str());
    EXPECT_EQ(written, original.size());

    FileTraceSource file(path.str());
    EXPECT_EQ(file.length(), original.size());
    EXPECT_EQ(file.name(), synth.name());
    EXPECT_EQ(file.version(), TraceFormat::kVersion);
    expectSameStream(original, drain(file));
}

TEST(TraceIo, ResetReplaysIdenticalStream)
{
    TempTracePath path("reset");
    SyntheticWorkload synth(tinyParams(10'000));
    recordTrace(synth, path.str());

    FileTraceSource file(path.str());
    const auto first = drain(file);
    ASSERT_EQ(first.size(), 10'000u);
    file.reset();
    expectSameStream(first, drain(file));

    // A partially consumed source must also rewind cleanly.
    file.reset();
    TraceInst inst;
    for (int i = 0; i < 1234; ++i)
        ASSERT_TRUE(file.next(inst));
    file.reset();
    expectSameStream(first, drain(file));
}

TEST(TraceIo, ExhaustedSourceStaysExhausted)
{
    TempTracePath path("exhausted");
    SyntheticWorkload synth(tinyParams(2'000));
    recordTrace(synth, path.str());

    FileTraceSource file(path.str());
    EXPECT_EQ(drain(file).size(), 2'000u);
    TraceInst inst;
    EXPECT_FALSE(file.next(inst));
    EXPECT_FALSE(file.next(inst));
}

TEST(TraceIo, EncodingIsCompact)
{
    TempTracePath path("compact");
    SyntheticWorkload synth(tinyParams(50'000));
    recordTrace(synth, path.str());

    std::FILE *f = std::fopen(path.str().c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long bytes = std::ftell(f);
    std::fclose(f);
    // Mostly-sequential synthetic streams should stay under
    // 2 B/instruction (vs. 18 B for in-memory TraceInst records).
    EXPECT_LT(static_cast<double>(bytes) / 50'000.0, 2.0);
}

TEST(TraceIo, WriterCountsAndClosesIdempotently)
{
    TempTracePath path("close");
    TraceWriter writer(path.str(), "unit");
    TraceInst inst;
    inst.pc = 0x400000;
    inst.nextPc = inst.pc + TraceInst::kInstBytes;
    writer.append(inst);
    inst.pc = inst.nextPc;
    inst.nextPc = 0x500000; // taken branch with a large delta
    inst.kind = BranchKind::Direct;
    inst.taken = true;
    writer.append(inst);
    EXPECT_EQ(writer.written(), 2u);
    writer.close();
    writer.close(); // second close is a no-op

    FileTraceSource file(path.str());
    EXPECT_EQ(file.length(), 2u);
    EXPECT_EQ(file.name(), "unit");
    const auto records = drain(file);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].pc, 0x400000u);
    EXPECT_EQ(records[1].nextPc, 0x500000u);
    EXPECT_EQ(static_cast<int>(records[1].kind),
              static_cast<int>(BranchKind::Direct));
    EXPECT_TRUE(records[1].taken);
}

TEST(TraceIo, HandlesBackwardAndUnlinkedDeltas)
{
    TempTracePath path("deltas");
    // A hand-built stream exercising every tag combination: linked
    // sequential, linked non-sequential, unlinked with negative pc
    // delta, and a conditional not-taken.
    std::vector<TraceInst> stream;
    TraceInst a;
    a.pc = 0x401000;
    a.nextPc = a.pc + 4;
    stream.push_back(a);
    TraceInst b;
    b.pc = a.nextPc; // linked
    b.nextPc = 0x400800; // backward target
    b.kind = BranchKind::Cond;
    b.taken = true;
    stream.push_back(b);
    TraceInst c;
    c.pc = 0x400100; // NOT linked (pc != 0x400800)
    c.nextPc = c.pc + 4;
    c.kind = BranchKind::None;
    stream.push_back(c);
    TraceInst d;
    d.pc = c.nextPc;
    d.nextPc = d.pc + 4;
    d.kind = BranchKind::Cond;
    d.taken = false;
    stream.push_back(d);

    {
        TraceWriter writer(path.str(), "deltas");
        for (const auto &inst : stream)
            writer.append(inst);
    } // destructor closes

    FileTraceSource file(path.str());
    expectSameStream(stream, drain(file));
}

TEST(MemorySource, SharesOneImageAcrossCursors)
{
    SyntheticWorkload synth(tinyParams(5'000));
    const TraceImage image = materializeTrace(synth);
    EXPECT_EQ(image->size(), 5'000u);

    MemoryTraceSource a(image, "ws");
    MemoryTraceSource b(image, "ws");
    // Interleaved iteration: private cursors over shared storage.
    TraceInst ia, ib;
    ASSERT_TRUE(a.next(ia));
    ASSERT_TRUE(a.next(ia));
    ASSERT_TRUE(b.next(ib));
    EXPECT_EQ(ib.pc, (*image)[0].pc);
    EXPECT_EQ(ia.pc, (*image)[1].pc);
    EXPECT_EQ(a.image().get(), b.image().get());

    a.reset();
    expectSameStream(*image, drain(a));
}

TEST(MemorySource, CaptureMatchesSource)
{
    SyntheticWorkload synth(tinyParams(5'000));
    const auto original = drain(synth);
    synth.reset();
    MemoryTraceSource captured = MemoryTraceSource::capture(synth);
    EXPECT_EQ(captured.name(), synth.name());
    EXPECT_EQ(captured.length(), original.size());
    expectSameStream(original, drain(captured));
}

TEST(TraceIndex, WriterEmitsFooterAndReaderLoadsIt)
{
    TempTracePath path("indexed");
    SyntheticWorkload synth(tinyParams(30'000));
    // A small checkpoint interval so a short trace carries several
    // checkpoints.
    {
        TraceWriter writer(path.str(), synth.name(), 4096);
        synth.reset();
        TraceInst inst;
        while (synth.next(inst))
            writer.append(inst);
        writer.close();
    }
    FileTraceSource file(path.str());
    EXPECT_EQ(file.version(), TraceFormat::kVersion);
    EXPECT_TRUE(file.hasIndex());
    EXPECT_EQ(file.indexInterval(), 4096u);
    // The footer must not disturb the record stream.
    synth.reset();
    expectSameStream(drain(synth), drain(file));

    // A trace shorter than one default checkpoint interval still
    // carries (and reports) its footer — zero checkpoints, with the
    // payload start as the implicit checkpoint 0.
    TempTracePath short_path("indexed_short");
    SyntheticWorkload short_synth(tinyParams(2'000));
    recordTrace(short_synth, short_path.str());
    FileTraceSource short_file(short_path.str());
    EXPECT_TRUE(short_file.hasIndex());
    EXPECT_EQ(short_file.indexInterval(),
              TraceFormat::kIndexInterval);
    short_file.seekToInstruction(1'500);
    TraceInst inst;
    EXPECT_TRUE(short_file.next(inst));
}

TEST(TraceIndex, SeekToInstructionMatchesLinearDecode)
{
    TempTracePath path("seek");
    SyntheticWorkload synth(tinyParams(30'000));
    const auto reference = drain(synth);
    {
        TraceWriter writer(path.str(), synth.name(), 1024);
        for (const TraceInst &inst : reference)
            writer.append(inst);
        writer.close();
    }
    FileTraceSource file(path.str());
    // Checkpoint-aligned, mid-checkpoint, backward, start, and end.
    for (const std::uint64_t target :
         {std::uint64_t{1024}, std::uint64_t{5000},
          std::uint64_t{29'999}, std::uint64_t{777},
          std::uint64_t{0}, std::uint64_t{30'000}}) {
        file.seekToInstruction(target);
        TraceInst inst;
        for (std::uint64_t i = target; i < reference.size(); ++i) {
            ASSERT_TRUE(file.next(inst)) << "at " << i;
            ASSERT_EQ(inst.pc, reference[i].pc) << "at " << i;
            ASSERT_EQ(inst.nextPc, reference[i].nextPc)
                << "at " << i;
            if (i > target + 64)
                break; // spot-check a window, not the whole tail
        }
        if (target >= reference.size()) {
            EXPECT_FALSE(file.next(inst));
        }
    }
    // Seeking past the end clamps and the stream is exhausted.
    file.seekToInstruction(1u << 30);
    TraceInst inst;
    EXPECT_FALSE(file.next(inst));
}

TEST(TraceIndex, FooterlessFileStillSeeksLinearly)
{
    TempTracePath path("nofooter");
    SyntheticWorkload synth(tinyParams(8'000));
    const auto reference = drain(synth);
    {
        // index_interval = 0: no footer, flags stay clear.
        TraceWriter writer(path.str(), synth.name(), 0);
        for (const TraceInst &inst : reference)
            writer.append(inst);
        writer.close();
    }
    FileTraceSource file(path.str());
    EXPECT_FALSE(file.hasIndex());
    EXPECT_EQ(file.indexInterval(), 0u);
    file.seekToInstruction(6'000);
    TraceInst inst;
    ASSERT_TRUE(file.next(inst));
    EXPECT_EQ(inst.pc, reference[6'000].pc);
    EXPECT_EQ(inst.nextPc, reference[6'000].nextPc);
}

TEST(TraceIndex, Version1FilesStillLoad)
{
    TempTracePath path("v1compat");
    SyntheticWorkload synth(tinyParams(4'000));
    const auto reference = drain(synth);
    {
        TraceWriter writer(path.str(), synth.name(), 0);
        for (const TraceInst &inst : reference)
            writer.append(inst);
        writer.close();
    }
    // Rewrite the header version to 1 — byte-wise, a footerless v2
    // file *is* a v1 file.
    {
        std::fstream f(path.str(),
                       std::ios::binary | std::ios::in |
                           std::ios::out);
        ASSERT_TRUE(f.is_open());
        f.seekp(4);
        const char v1[2] = {1, 0};
        f.write(v1, 2);
    }
    TraceFileInfo info;
    ASSERT_TRUE(readTraceHeader(path.str(), info));
    EXPECT_EQ(info.version, 1u);
    EXPECT_EQ(info.instructions, reference.size());

    FileTraceSource file(path.str());
    EXPECT_EQ(file.version(), 1u);
    EXPECT_FALSE(file.hasIndex());
    expectSameStream(reference, drain(file));
    file.seekToInstruction(1'000);
    TraceInst inst;
    ASSERT_TRUE(file.next(inst));
    EXPECT_EQ(inst.pc, reference[1'000].pc);
}

TEST(MemorySource, RegionCursorBehavesLikeCompleteSource)
{
    SyntheticWorkload synth(tinyParams(10'000));
    const auto reference = drain(synth);
    synth.reset();
    MemoryTraceSource whole = MemoryTraceSource::capture(synth);

    MemoryTraceSource region(whole.image(), whole.name(), 2'000,
                             7'000);
    EXPECT_EQ(region.length(), 5'000u);
    TraceInst inst;
    ASSERT_TRUE(region.next(inst));
    EXPECT_EQ(inst.pc, reference[2'000].pc);
    // reset() rewinds to the region begin, not the image begin.
    const auto rest = drain(region);
    EXPECT_EQ(rest.size(), 4'999u);
    region.reset();
    ASSERT_TRUE(region.next(inst));
    EXPECT_EQ(inst.pc, reference[2'000].pc);
    // seekToInstruction is region-relative.
    region.seekToInstruction(4'999);
    ASSERT_TRUE(region.next(inst));
    EXPECT_EQ(inst.pc, reference[6'999].pc);
    EXPECT_FALSE(region.next(inst));

    // Sub-regions nest with region-relative indices, and bounds
    // clamp to the image.
    MemoryTraceSource sub = region.region(1'000, 2'000);
    EXPECT_EQ(sub.length(), 1'000u);
    ASSERT_TRUE(sub.next(inst));
    EXPECT_EQ(inst.pc, reference[3'000].pc);
    MemoryTraceSource clamped(whole.image(), whole.name(), 9'000,
                              1u << 30);
    EXPECT_EQ(clamped.length(), 1'000u);
}
