/**
 * @file
 * Tests of the assembled filtered organization (i-Filter + LRU i-cache
 * + admission controller): the Fig. 2 datapath, victim judgement under
 * each admission policy, the no-block-in-both invariant, and the
 * admission controllers themselves.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/filtered_icache.hh"

using namespace acic;

namespace {

CacheAccess
access(BlockAddr blk, std::uint64_t seq = 0,
       std::uint64_t next_use = kNeverAgain)
{
    CacheAccess a;
    a.blk = blk;
    a.pc = 0x400000 + blk * 64;
    a.seq = seq;
    a.nextUse = next_use;
    return a;
}

FilteredIcache::Config
smallConfig()
{
    FilteredIcache::Config config;
    config.filterEntries = 2;
    config.icacheSets = 4;
    config.icacheWays = 2;
    return config;
}

} // namespace

TEST(FilteredIcache, FillLandsInFilterNotIcache)
{
    FilteredIcache org(smallConfig(), std::make_unique<AlwaysAdmit>(),
                       "test");
    org.fill(access(1));
    EXPECT_TRUE(org.filter().contains(1));
    EXPECT_FALSE(org.icache().probe(1));
    EXPECT_TRUE(org.access(access(1)));
    EXPECT_EQ(org.stats().get("filtered.filter_hit"), 1u);
}

TEST(FilteredIcache, AlwaysAdmitMovesVictimsToIcache)
{
    FilteredIcache org(smallConfig(), std::make_unique<AlwaysAdmit>(),
                       "test");
    org.fill(access(1));
    org.fill(access(2));
    org.fill(access(3)); // evicts 1 from the 2-entry filter
    EXPECT_TRUE(org.icache().probe(1));
    EXPECT_TRUE(org.access(access(1)));
    EXPECT_EQ(org.stats().get("filtered.icache_hit"), 1u);
}

TEST(FilteredIcache, NeverAdmitDropsVictimsOnceWarm)
{
    FilteredIcache org(smallConfig(), std::make_unique<NeverAdmit>(),
                       "test");
    // Warm the i-cache's free ways first (free ways always accept).
    for (BlockAddr b = 0; b < 20; ++b)
        org.fill(access(100 + b));
    const auto dropped_before =
        org.stats().get("filtered.victims_dropped");
    org.fill(access(1));
    org.fill(access(2));
    org.fill(access(3));
    EXPECT_GT(org.stats().get("filtered.victims_dropped"),
              dropped_before);
    EXPECT_FALSE(org.contains(1));
}

TEST(FilteredIcache, OptAdmissionComparesNextUse)
{
    FilteredIcache org(smallConfig(), std::make_unique<OptAdmission>(),
                       "test");
    // Fill the i-cache set of block 0 with far-future blocks.
    for (BlockAddr b : {4, 8, 12, 16, 20, 24})
        org.fill(access(b, 0, 1'000'000));
    // Near-future victim must be admitted over a far contender.
    org.fill(access(0, 10, 50));
    org.fill(access(32, 11, kNeverAgain));
    org.fill(access(64, 12, kNeverAgain)); // evict 0 from filter
    EXPECT_TRUE(org.contains(0));
}

TEST(FilteredIcache, NoBlockLivesInFilterAndIcache)
{
    FilteredIcache org(smallConfig(), std::make_unique<AlwaysAdmit>(),
                       "test");
    Rng rng(3);
    for (int i = 0; i < 5000; ++i) {
        const BlockAddr blk = rng.nextBelow(64);
        CacheAccess a = access(blk, i);
        if (!org.access(a))
            org.fill(a);
        if (org.filter().contains(blk)) {
            ASSERT_FALSE(org.icache().probe(blk))
                << "block " << blk << " in both structures";
        }
    }
}

TEST(FilteredIcache, ContainsCoversBothStructures)
{
    FilteredIcache org(smallConfig(), std::make_unique<AlwaysAdmit>(),
                       "test");
    org.fill(access(1));
    org.fill(access(2));
    org.fill(access(3));
    EXPECT_TRUE(org.contains(1)); // now in i-cache
    EXPECT_TRUE(org.contains(3)); // still in filter
    EXPECT_FALSE(org.contains(99));
}

TEST(FilteredIcache, AcicEndToEndTrains)
{
    FilteredIcache::Config config;
    config.filterEntries = 4;
    config.icacheSets = 8;
    config.icacheWays = 2;
    auto admission = std::make_unique<AcicAdmission>();
    auto *admission_raw = admission.get();
    FilteredIcache org(config, std::move(admission), "acic");
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
        const BlockAddr blk = rng.nextBelow(128);
        CacheAccess a = access(blk, i);
        a.cycle = static_cast<Cycle>(i);
        org.tick(a.cycle);
        if (!org.access(a))
            org.fill(a);
    }
    EXPECT_GT(admission_raw->cshr().resolvedCount(), 100u);
    EXPECT_GT(org.stats().get("filtered.filter_victims"), 1000u);
}

TEST(FilteredIcache, StorageIncludesFilterAndAdmission)
{
    FilteredIcache plain(smallConfig(),
                         std::make_unique<AlwaysAdmit>(), "a");
    FilteredIcache acic(smallConfig(),
                        std::make_unique<AcicAdmission>(), "b");
    EXPECT_GT(acic.storageOverheadBits(),
              plain.storageOverheadBits());
}

TEST(Admission, AccessCountPrefersHotterBlock)
{
    AccessCountAdmission admission;
    CacheLine victim, contender;
    victim.blk = 1;
    contender.blk = 2;
    // Touch the victim's block far more often.
    for (int i = 0; i < 30; ++i)
        admission.onDemandAccess(access(1), 0);
    admission.onDemandAccess(access(2), 0);
    AdmissionContext ctx{victim, contender, 0, 0, 0};
    EXPECT_TRUE(admission.admit(ctx));

    AccessCountAdmission admission2;
    for (int i = 0; i < 30; ++i)
        admission2.onDemandAccess(access(2), 0);
    EXPECT_FALSE(admission2.admit(ctx));
}

TEST(Admission, RandomRespectsProbability)
{
    RandomAdmission admission(0.6, 99);
    CacheLine victim, contender;
    AdmissionContext ctx{victim, contender, 0, 0, 0};
    int admits = 0;
    for (int i = 0; i < 10000; ++i)
        admits += admission.admit(ctx) ? 1 : 0;
    EXPECT_NEAR(admits / 10000.0, 0.6, 0.03);
}

TEST(Admission, NamesAreStable)
{
    EXPECT_EQ(AlwaysAdmit().name(), "always-insert");
    EXPECT_EQ(NeverAdmit().name(), "ifilter-only");
    EXPECT_EQ(OptAdmission().name(), "opt-bypass");
    EXPECT_EQ(AcicAdmission().name(), "acic-two-level");
}
