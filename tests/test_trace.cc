/**
 * @file
 * Tests of the synthetic workload generator: determinism (replay and
 * twin-instance equality), control-flow consistency (every record's
 * nextPc is the next record's pc), preset validity, and structural
 * properties (bursts, phase working sets, branch mix).
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/synthetic.hh"
#include "trace/workload_params.hh"

using namespace acic;

namespace {

WorkloadParams
tinyParams()
{
    auto p = Workloads::byName("media_streaming");
    p.instructions = 50'000;
    return p;
}

} // namespace

TEST(Synthetic, EmitsExactlyRequestedLength)
{
    SyntheticWorkload trace(tinyParams());
    TraceInst inst;
    std::uint64_t n = 0;
    while (trace.next(inst))
        ++n;
    EXPECT_EQ(n, 50'000u);
    EXPECT_FALSE(trace.next(inst));
}

TEST(Synthetic, ResetReplaysIdenticalStream)
{
    SyntheticWorkload trace(tinyParams());
    std::vector<Addr> first;
    TraceInst inst;
    while (trace.next(inst))
        first.push_back(inst.pc);
    trace.reset();
    std::size_t i = 0;
    while (trace.next(inst)) {
        ASSERT_EQ(inst.pc, first[i]);
        ++i;
    }
    EXPECT_EQ(i, first.size());
}

TEST(Synthetic, TwinInstancesAgree)
{
    SyntheticWorkload a(tinyParams()), b(tinyParams());
    TraceInst ia, ib;
    while (a.next(ia)) {
        ASSERT_TRUE(b.next(ib));
        ASSERT_EQ(ia.pc, ib.pc);
        ASSERT_EQ(ia.nextPc, ib.nextPc);
        ASSERT_EQ(static_cast<int>(ia.kind),
                  static_cast<int>(ib.kind));
        ASSERT_EQ(ia.taken, ib.taken);
    }
}

TEST(Synthetic, NextPcChainsToFollowingRecord)
{
    SyntheticWorkload trace(tinyParams());
    TraceInst prev, cur;
    ASSERT_TRUE(trace.next(prev));
    while (trace.next(cur)) {
        ASSERT_EQ(prev.nextPc, cur.pc)
            << "control flow must be a connected chain";
        prev = cur;
    }
}

TEST(Synthetic, NonBranchesFallThrough)
{
    SyntheticWorkload trace(tinyParams());
    TraceInst inst;
    while (trace.next(inst)) {
        if (inst.kind == BranchKind::None) {
            ASSERT_EQ(inst.nextPc, inst.pc + TraceInst::kInstBytes);
            ASSERT_FALSE(inst.taken);
        }
        if (inst.kind == BranchKind::Cond && !inst.taken) {
            ASSERT_EQ(inst.nextPc, inst.pc + TraceInst::kInstBytes);
        }
    }
}

TEST(Synthetic, CallsAndReturnsBalanceRoughly)
{
    SyntheticWorkload trace(tinyParams());
    TraceInst inst;
    std::int64_t calls = 0, rets = 0;
    while (trace.next(inst)) {
        calls += inst.kind == BranchKind::Call ? 1 : 0;
        rets += inst.kind == BranchKind::Return ? 1 : 0;
    }
    EXPECT_GT(calls, 100);
    EXPECT_GT(rets, 100);
}

TEST(Synthetic, FootprintAndFunctionsReported)
{
    SyntheticWorkload trace(tinyParams());
    EXPECT_GT(trace.codeFootprintBytes(), 100'000u);
    EXPECT_GT(trace.functionCount(), 100u);
}

TEST(Synthetic, InstructionsStayInsideImage)
{
    SyntheticWorkload trace(tinyParams());
    const Addr lo = 0x400000;
    const Addr hi = lo + trace.codeFootprintBytes() + 64;
    TraceInst inst;
    while (trace.next(inst)) {
        ASSERT_GE(inst.pc, lo);
        ASSERT_LT(inst.pc, hi);
    }
}

class PresetTest
    : public ::testing::TestWithParam<WorkloadParams>
{
};

TEST_P(PresetTest, GeneratesBurstyStream)
{
    auto params = GetParam();
    params.instructions = 30'000;
    SyntheticWorkload trace(params);
    TraceInst inst;
    std::uint64_t same_block_pairs = 0, total_pairs = 0;
    Addr prev_blk = ~Addr{0};
    std::set<BlockAddr> blocks;
    while (trace.next(inst)) {
        const BlockAddr blk = blockOf(inst.pc);
        blocks.insert(blk);
        if (prev_blk != ~Addr{0}) {
            ++total_pairs;
            same_block_pairs += blk == prev_blk ? 1 : 0;
        }
        prev_blk = blk;
    }
    // Spatial bursts: most consecutive instructions share a block.
    EXPECT_GT(static_cast<double>(same_block_pairs) /
                  static_cast<double>(total_pairs),
              0.6)
        << params.name;
    EXPECT_GT(blocks.size(), 50u) << params.name;
}

TEST_P(PresetTest, BranchDensityInRealisticRange)
{
    auto params = GetParam();
    params.instructions = 30'000;
    SyntheticWorkload trace(params);
    TraceInst inst;
    std::uint64_t branches = 0;
    while (trace.next(inst))
        branches += inst.isBranch() ? 1 : 0;
    const double density = static_cast<double>(branches) / 30'000.0;
    EXPECT_GT(density, 0.08) << params.name;
    EXPECT_LT(density, 0.35) << params.name;
}

INSTANTIATE_TEST_SUITE_P(
    Datacenter, PresetTest,
    ::testing::ValuesIn(Workloads::datacenter()),
    [](const auto &param_info) { return param_info.param.name; });

INSTANTIATE_TEST_SUITE_P(
    Spec, PresetTest, ::testing::ValuesIn(Workloads::spec()),
    [](const auto &param_info) { return param_info.param.name; });

TEST(Workloads, ByNameFindsEveryPreset)
{
    for (const auto &p : Workloads::datacenter())
        EXPECT_EQ(Workloads::byName(p.name).name, p.name);
    for (const auto &p : Workloads::spec())
        EXPECT_EQ(Workloads::byName(p.name).name, p.name);
}

TEST(Workloads, TenDatacenterAndFiveSpec)
{
    EXPECT_EQ(Workloads::datacenter().size(), 10u);
    EXPECT_EQ(Workloads::spec().size(), 5u);
}

TEST(Workloads, DistinctSeedsAcrossPresets)
{
    std::set<std::uint64_t> seeds;
    for (const auto &p : Workloads::datacenter())
        seeds.insert(p.seed);
    for (const auto &p : Workloads::spec())
        seeds.insert(p.seed);
    EXPECT_EQ(seeds.size(), 15u);
}
