/**
 * @file
 * Property-style tests of the kv_spec grammar and the scheme
 * registry built on it, driven by the repo's seeded PRNG so failures
 * reproduce from the printed seed:
 *
 *  - parse(toString(s)) == s for hundreds of randomly generated
 *    KvSpecs (names, key sets, scalar values, {a,b,c} value sets);
 *  - expandValueSets() yields exactly the cartesian product, every
 *    expansion is set-free, and the leftmost set varies slowest;
 *  - parseScheme(toString(s)) == s for randomly parameterized
 *    registry schemes whose values are drawn from the declared
 *    ParamSpec ranges/keyword lists.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/kv_spec.hh"
#include "common/rng.hh"
#include "sim/scheme.hh"

using namespace acic;

namespace {

/** Identifier-safe token: [a-z][a-z0-9_]*, 1..8 chars. */
std::string
randomToken(Rng &rng)
{
    static const char kFirst[] = "abcdefghijklmnopqrstuvwxyz";
    static const char kRest[] = "abcdefghijklmnopqrstuvwxyz0123456789_";
    const std::size_t len = 1 + rng.nextBelow(8);
    std::string out;
    out.push_back(kFirst[rng.nextBelow(sizeof(kFirst) - 1)]);
    for (std::size_t i = 1; i < len; ++i)
        out.push_back(kRest[rng.nextBelow(sizeof(kRest) - 1)]);
    return out;
}

/** Scalar value: a token or a number. */
std::string
randomScalar(Rng &rng)
{
    if (rng.chance(0.5))
        return std::to_string(rng.nextBelow(100000));
    return randomToken(rng);
}

/**
 * Random KvSpec. Keys are made unique by suffixing their position
 * (the grammar rejects duplicates). @p set_sizes, when non-null,
 * receives the size of every value set (scalars count as 1) so the
 * caller can compute the expected cartesian-product size.
 */
KvSpec
randomSpec(Rng &rng, std::vector<std::size_t> *set_sizes = nullptr)
{
    KvSpec spec;
    spec.name = randomToken(rng);
    const std::size_t n_params = rng.nextBelow(5); // 0..4
    for (std::size_t p = 0; p < n_params; ++p) {
        KvPair pair;
        pair.key = randomToken(rng) + std::to_string(p);
        if (rng.chance(0.3)) {
            const std::size_t n = 1 + rng.nextBelow(4); // 1..4
            pair.value = "{";
            for (std::size_t i = 0; i < n; ++i) {
                // The position suffix makes members pairwise distinct
                // (distinct last characters), so the expansion count
                // below can assert exact cartesian uniqueness.
                pair.value += (i ? "," : "") + randomScalar(rng) +
                              std::to_string(i);
            }
            pair.value += "}";
            if (set_sizes != nullptr)
                set_sizes->push_back(n);
        } else {
            pair.value = randomScalar(rng);
            if (set_sizes != nullptr)
                set_sizes->push_back(1);
        }
        spec.params.push_back(pair);
    }
    return spec;
}

void
expectSpecEq(const KvSpec &a, const KvSpec &b, const std::string &what)
{
    EXPECT_EQ(a.name, b.name) << what;
    ASSERT_EQ(a.params.size(), b.params.size()) << what;
    for (std::size_t i = 0; i < a.params.size(); ++i) {
        EXPECT_TRUE(a.params[i] == b.params[i])
            << what << ": param " << i << " '" << a.params[i].key
            << "=" << a.params[i].value << "' vs '" << b.params[i].key
            << "=" << b.params[i].value << "'";
    }
}

} // namespace

TEST(KvProperty, ParseToStringRoundTrips)
{
    for (unsigned seed = 1; seed <= 300; ++seed) {
        Rng rng(seed);
        const KvSpec spec = randomSpec(rng);
        const std::string text = spec.toString();
        KvSpec reparsed;
        try {
            reparsed = parseKvSpec(text);
        } catch (const SpecError &e) {
            FAIL() << "seed " << seed << ": '" << text
                   << "' failed to reparse: " << e.what();
        }
        expectSpecEq(spec, reparsed,
                     "seed " + std::to_string(seed) + ": " + text);
    }
}

TEST(KvProperty, ExpansionCountIsCartesianProduct)
{
    for (unsigned seed = 1; seed <= 300; ++seed) {
        Rng rng(seed);
        std::vector<std::size_t> set_sizes;
        const KvSpec spec = randomSpec(rng, &set_sizes);
        std::size_t expected = 1;
        for (const std::size_t n : set_sizes)
            expected *= n;

        const std::vector<KvSpec> expanded = expandValueSets(spec);
        EXPECT_EQ(expanded.size(), expected)
            << "seed " << seed << ": " << spec.toString();
        for (const KvSpec &e : expanded) {
            EXPECT_FALSE(hasValueSets(e))
                << "seed " << seed << ": residual set in "
                << e.toString();
            EXPECT_EQ(e.name, spec.name);
            EXPECT_EQ(e.params.size(), spec.params.size());
        }
        // Set members are generated pairwise distinct, so every
        // expansion must be distinct too: |unique| == product pins
        // the content, not just the size.
        std::set<std::string> unique;
        for (const KvSpec &e : expanded)
            unique.insert(e.toString());
        EXPECT_EQ(unique.size(), expected)
            << "seed " << seed << ": duplicate expansions of "
            << spec.toString();
    }
}

TEST(KvProperty, LeftmostSetVariesSlowest)
{
    const KvSpec spec = parseKvSpec("s(a={1,2},b={x,y,z})");
    const std::vector<KvSpec> expanded = expandValueSets(spec);
    ASSERT_EQ(expanded.size(), 6u);
    // a stays fixed across each run of three consecutive expansions.
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_EQ(expanded[i].params[0].value, i < 3 ? "1" : "2");
        const char *b[] = {"x", "y", "z"};
        EXPECT_EQ(expanded[i].params[1].value, b[i % 3]);
    }
}

namespace {

/**
 * Random in-range value text for a declared parameter; empty when the
 * kind has no safely seedable text form (Real stays out to avoid
 * formatting/round-trip ambiguity — covered by directed tests).
 */
std::string
randomParamValue(Rng &rng, const ParamSpec &doc)
{
    switch (doc.kind) {
      case ParamSpec::Kind::Count: {
        const auto lo = static_cast<std::uint64_t>(doc.min);
        const auto hi = static_cast<std::uint64_t>(doc.max);
        return std::to_string(rng.nextRange(lo, hi));
      }
      case ParamSpec::Kind::Integer: {
        const auto span = static_cast<std::uint64_t>(
            doc.max - doc.min);
        const auto off = rng.nextRange(0, span);
        return std::to_string(
            static_cast<std::int64_t>(doc.min) +
            static_cast<std::int64_t>(off));
      }
      case ParamSpec::Kind::Keyword:
        return doc.keywords[rng.nextBelow(doc.keywords.size())];
      case ParamSpec::Kind::Real:
        return "";
    }
    return "";
}

} // namespace

TEST(KvProperty, SchemeSpecRoundTripsThroughRegistry)
{
    const auto &entries = SchemeRegistry::instance().entries();
    std::size_t round_tripped = 0;
    for (unsigned seed = 1; seed <= 200; ++seed) {
        Rng rng(seed);
        const auto &entry =
            entries[rng.nextBelow(entries.size())];
        KvSpec kv;
        kv.name = entry.key;
        for (const ParamSpec &doc : entry.params) {
            if (!rng.chance(0.5))
                continue;
            const std::string value = randomParamValue(rng, doc);
            if (value.empty())
                continue;
            kv.params.push_back({doc.key, value});
        }

        SchemeSpec spec;
        try {
            spec = parseScheme(kv.toString());
        } catch (const SpecError &) {
            // Independently drawn values can violate cross-parameter
            // constraints (e.g. CSHR geometry); those rejections are
            // the registry doing its job, not a round-trip failure.
            continue;
        }
        const SchemeSpec again = parseScheme(spec.toString());
        EXPECT_EQ(spec, again)
            << "seed " << seed << ": " << spec.toString();
        EXPECT_EQ(schemeName(spec), schemeName(again));
        ++round_tripped;
    }
    // The sampler must not degenerate into rejecting everything.
    EXPECT_GE(round_tripped, 100u);
}

TEST(KvProperty, SchemeGridExpansionMatchesProduct)
{
    const std::vector<SchemeSpec> grid = expandSchemeGrid(
        "acic(filter={8,16,32},update={instant,pipelined}),"
        "lru(ways={8,9})");
    EXPECT_EQ(grid.size(), 3u * 2u + 2u);
}
