/**
 * @file
 * Tests of the oracle toolkit: next-use annotations against a naive
 * recomputation, nextUseAfter queries, and the Fenwick-based
 * reuse-distance profiler against a brute-force stack-distance
 * reference (property-tested over random streams).
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "sim/oracle.hh"
#include "sim/reuse.hh"
#include "trace/synthetic.hh"
#include "trace/workload_params.hh"

using namespace acic;

TEST(Oracle, NextUseMatchesNaiveRecomputation)
{
    auto params = Workloads::byName("sibench");
    params.instructions = 20'000;
    SyntheticWorkload trace(params);
    const DemandOracle oracle = DemandOracle::build(trace);

    // Naive forward scan.
    const std::uint64_t n = oracle.length();
    ASSERT_GT(n, 1000u);
    for (std::uint64_t i = 0; i < std::min<std::uint64_t>(n, 500);
         ++i) {
        std::uint64_t expected = kNeverAgain;
        for (std::uint64_t j = i + 1; j < n; ++j) {
            if (oracle.blockAt(j) == oracle.blockAt(i)) {
                expected = j;
                break;
            }
        }
        ASSERT_EQ(oracle.nextUseAt(i), expected) << "at index " << i;
    }
}

TEST(Oracle, NextUseAfterFindsStrictlyLater)
{
    auto params = Workloads::byName("sibench");
    params.instructions = 20'000;
    SyntheticWorkload trace(params);
    const DemandOracle oracle = DemandOracle::build(trace);
    const BlockAddr blk = oracle.blockAt(100);
    const std::uint64_t next = oracle.nextUseAfter(blk, 100);
    EXPECT_EQ(next, oracle.nextUseAt(100));
    EXPECT_EQ(oracle.nextUseAfter(blk, oracle.length()),
              kNeverAgain);
    EXPECT_EQ(oracle.nextUseAfter(0xdeadbeef, 0), kNeverAgain);
}

TEST(Oracle, BuildResetsTheTrace)
{
    auto params = Workloads::byName("sibench");
    params.instructions = 5'000;
    SyntheticWorkload trace(params);
    const DemandOracle a = DemandOracle::build(trace);
    const DemandOracle b = DemandOracle::build(trace);
    ASSERT_EQ(a.length(), b.length());
    for (std::uint64_t i = 0; i < a.length(); i += 97)
        ASSERT_EQ(a.blockAt(i), b.blockAt(i));
}

namespace {

/** Brute-force stack distance: distinct blocks since last access. */
std::int64_t
naiveStackDistance(const std::vector<BlockAddr> &seq, std::size_t i)
{
    for (std::size_t j = i; j-- > 0;) {
        if (seq[j] == seq[i]) {
            std::set<BlockAddr> distinct(seq.begin() + j + 1,
                                         seq.begin() + i);
            distinct.erase(seq[i]);
            return static_cast<std::int64_t>(distinct.size());
        }
    }
    return -1;
}

} // namespace

class ReuseProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ReuseProperty, MatchesBruteForceStackDistance)
{
    Rng rng(GetParam());
    std::vector<BlockAddr> seq;
    for (int i = 0; i < 600; ++i)
        seq.push_back(rng.nextBelow(40));

    ReuseProfiler profiler(seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        profiler.feed(seq[i]);
        const std::int64_t expected = naiveStackDistance(seq, i);
        if (expected >= 0) {
            ASSERT_EQ(profiler.lastDistance(), expected)
                << "at access " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReuseProperty,
                         ::testing::Values(11, 22, 33, 44));

TEST(Reuse, SequentialBlocksGiveDistanceZero)
{
    ReuseProfiler profiler(100);
    profiler.feed(5);
    profiler.feed(5);
    EXPECT_EQ(profiler.lastDistance(), 0);
    EXPECT_EQ(profiler.distribution().count(0), 1u);
}

TEST(Reuse, DistanceCountsDistinctBlocksOnly)
{
    ReuseProfiler profiler(100);
    profiler.feed(1);
    profiler.feed(2);
    profiler.feed(2);
    profiler.feed(2);
    profiler.feed(1); // only block 2 in between -> distance 1
    EXPECT_EQ(profiler.lastDistance(), 1);
}

TEST(Reuse, MarkovTransitionsTrackBucketPairs)
{
    ReuseProfiler profiler(1000);
    // Block 9 alternates distance 0 and distance 1 reuses.
    profiler.feed(9);
    profiler.feed(9); // d=0
    profiler.feed(7);
    profiler.feed(9); // d=1
    profiler.feed(9); // d=0
    const auto &t = profiler.transitions();
    EXPECT_EQ(t[0][1], 1u); // 0 -> 1-16 bucket
    EXPECT_EQ(t[1][0], 1u); // 1-16 -> 0 bucket
    EXPECT_GT(profiler.transitionProb(0, 1), 0.0);
}

TEST(Reuse, FirstAccessRecordsNoDistance)
{
    ReuseProfiler profiler(10);
    profiler.feed(1);
    EXPECT_EQ(profiler.distribution().total(), 0u);
    EXPECT_EQ(profiler.accesses(), 1u);
}
