/**
 * @file
 * Tests of the spec-string layer and the scheme registry: kv-spec
 * grammar errors (duplicate keys, empty parens, unknown/out-of-range
 * parameters), toString round-trips, lenient legacy-name aliases,
 * near-miss suggestions, sweep-grid cartesian expansion, and
 * equivalence of registry-built parameterized organizations with the
 * hand-built makeAcicOrg path the sensitivity benches used before
 * the refactor.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/lru.hh"
#include "common/kv_spec.hh"
#include "driver/experiment.hh"
#include "sim/organizations.hh"
#include "sim/runner.hh"

using namespace acic;

// ------------------------------------------------------- kv grammar

TEST(KvSpec, ParsesBareAndParameterizedForms)
{
    const KvSpec bare = parseKvSpec("acic");
    EXPECT_EQ(bare.name, "acic");
    EXPECT_TRUE(bare.params.empty());

    const KvSpec kv = parseKvSpec(" acic( filter=32 , cshr=8 ) ");
    EXPECT_EQ(kv.name, "acic");
    ASSERT_EQ(kv.params.size(), 2u);
    EXPECT_EQ(kv.params[0].key, "filter");
    EXPECT_EQ(kv.params[0].value, "32");
    EXPECT_EQ(kv.params[1].key, "cshr");
    EXPECT_EQ(kv.params[1].value, "8");
    EXPECT_EQ(kv.toString(), "acic(filter=32,cshr=8)");
}

TEST(KvSpec, RejectsGrammarErrors)
{
    EXPECT_THROW(parseKvSpec(""), SpecError);
    EXPECT_THROW(parseKvSpec("acic()"), SpecError);
    EXPECT_THROW(parseKvSpec("acic(filter=8"), SpecError);
    EXPECT_THROW(parseKvSpec("(filter=8)"), SpecError);
    EXPECT_THROW(parseKvSpec("acic(filter)"), SpecError);
    EXPECT_THROW(parseKvSpec("acic(=8)"), SpecError);
    EXPECT_THROW(parseKvSpec("acic(filter=)"), SpecError);
    EXPECT_THROW(parseKvSpec("acic(filter=8)x"), SpecError);
    EXPECT_THROW(parseKvSpec("acic(a=1,a=2)"), SpecError);
    EXPECT_THROW(parseKvSpec("acic(a=(1))"), SpecError);
    EXPECT_THROW(parseKvSpec("acic(a=8})"), SpecError);
}

TEST(KvSpec, SplitTopLevelIgnoresNestedSeparators)
{
    const auto items =
        splitTopLevel("acic(filter={8,16},cshr=4),lru(kb=40),opt");
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0], "acic(filter={8,16},cshr=4)");
    EXPECT_EQ(items[1], "lru(kb=40)");
    EXPECT_EQ(items[2], "opt");
}

// ---------------------------------------------------- param reader

TEST(ParamReader, ValidatesRangeUnknownAndDuplicates)
{
    const std::vector<ParamSpec> docs = {
        ParamSpec::count("filter", "16", 1, 1024, "slots"),
        ParamSpec::keyword("update", "pipelined",
                           {"pipelined", "instant"}, "timing"),
    };
    // Out of range.
    EXPECT_THROW(ParamReader("acic", docs, {{"filter", "0"}}),
                 SpecError);
    EXPECT_THROW(ParamReader("acic", docs, {{"filter", "2048"}}),
                 SpecError);
    // Non-numeric / non-integral.
    EXPECT_THROW(ParamReader("acic", docs, {{"filter", "ten"}}),
                 SpecError);
    EXPECT_THROW(ParamReader("acic", docs, {{"filter", "1.5"}}),
                 SpecError);
    // Unknown key names the valid ones.
    try {
        ParamReader("acic", docs, {{"fltr", "8"}});
        FAIL() << "unknown key accepted";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("filter"),
                  std::string::npos);
    }
    // Duplicate key.
    EXPECT_THROW(
        ParamReader("acic", docs,
                    {{"filter", "8"}, {"filter", "16"}}),
        SpecError);
    // Keyword outside the list; lenient folding inside it.
    EXPECT_THROW(ParamReader("acic", docs, {{"update", "now"}}),
                 SpecError);
    ParamReader ok("acic", docs,
                   {{"filter", "32"}, {"update", "Instant"}});
    EXPECT_EQ(ok.count("filter", 16), 32u);
    EXPECT_EQ(ok.keyword("update", "pipelined"), "instant");
    EXPECT_FALSE(ok.given("missing"));
    // Accessors read the same number validation accepted, whatever
    // the spelling (scientific/hex would silently truncate under a
    // base-10 integer reparse).
    ParamReader sci("acic", docs, {{"filter", "1e2"}});
    EXPECT_EQ(sci.count("filter", 16), 100u);
    ParamReader hex("acic", docs, {{"filter", "0x20"}});
    EXPECT_EQ(hex.count("filter", 16), 32u);
}

// -------------------------------------------------------- registry

TEST(SchemeRegistry, All22LegacyDisplayNamesResolve)
{
    static const char *const kLegacy[] = {
        "LRU", "SRRIP", "SHiP", "Harmony", "GHRP", "DSB", "OBM",
        "VVC", "VC3K", "VC8K", "36KB L1i", "40KB L1i", "OPT",
        "OPT Bypass", "ACIC", "ACIC (instant update)",
        "Always insert", "i-Filter only", "Access count",
        "Random bypass", "ACIC global-history", "ACIC bimodal"};
    const auto &presets = allSchemes();
    ASSERT_EQ(presets.size(), 22u);
    for (std::size_t i = 0; i < presets.size(); ++i) {
        const auto spec = schemeFromName(kLegacy[i]);
        ASSERT_TRUE(spec.has_value()) << kLegacy[i];
        EXPECT_EQ(*spec, presets[i]) << kLegacy[i];
        // Display names stay bit-identical to the legacy labels.
        EXPECT_EQ(schemeName(presets[i]), kLegacy[i]);
    }
}

TEST(SchemeRegistry, LenientAliasesKeepResolving)
{
    // '-'/'_'/case folding (legacy schemeFromName semantics).
    EXPECT_EQ(schemeFromName("opt_bypass")->key, "opt_bypass");
    EXPECT_EQ(schemeFromName("OPT-Bypass")->key, "opt_bypass");
    EXPECT_EQ(schemeFromName("opt bypass")->key, "opt_bypass");
    EXPECT_EQ(schemeFromName("36KB L1i")->key, "l1i36k");
    EXPECT_EQ(schemeFromName("36kb_l1i")->key, "l1i36k");
    EXPECT_EQ(schemeFromName("36kb")->key, "l1i36k");
    EXPECT_EQ(schemeFromName("ACIC (instant update)")->key,
              "acic_instant");
    EXPECT_EQ(schemeFromName("i-Filter only")->key, "ifilter_only");
    EXPECT_EQ(schemeFromName("I_FILTER_ONLY")->key, "ifilter_only");
    EXPECT_EQ(schemeFromName("hawkeye")->key, "harmony");
    EXPECT_EQ(schemeFromName("baseline")->key, "lru");
    EXPECT_FALSE(schemeFromName("no_such_scheme").has_value());
}

TEST(SchemeRegistry, UnknownNamesGetNearMissSuggestions)
{
    const auto hits = SchemeRegistry::instance().suggest("lruu");
    ASSERT_FALSE(hits.empty());
    EXPECT_EQ(hits.front(), "lru");
    try {
        parseScheme("acic_instnt");
        FAIL() << "unknown scheme accepted";
    } catch (const SpecError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("did you mean"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("acic_instant"), std::string::npos)
            << msg;
    }
}

TEST(SchemeRegistry, ParameterizedSpecsRoundTripThroughToString)
{
    const SchemeSpec spec =
        parseScheme("ACIC(filter=32, cshr=8, update=instant)");
    EXPECT_EQ(spec.key, "acic");
    EXPECT_EQ(spec.toString(),
              "acic(filter=32,cshr=8,update=instant)");
    EXPECT_EQ(schemeName(spec), spec.toString());
    EXPECT_EQ(parseScheme(spec.toString()), spec);

    // Bare presets round-trip too, via canonical keys.
    for (const SchemeSpec &preset : allSchemes())
        EXPECT_EQ(parseScheme(preset.toString()), preset);
}

TEST(SchemeRegistry, ParseRejectsBadParameters)
{
    EXPECT_THROW(parseScheme("acic(filter=0)"), SpecError);
    EXPECT_THROW(parseScheme("acic(filter=9999)"), SpecError);
    EXPECT_THROW(parseScheme("acic(bogus=1)"), SpecError);
    EXPECT_THROW(parseScheme("srrip(ways=4)"), SpecError);
    EXPECT_THROW(parseScheme("acic()"), SpecError);
    EXPECT_THROW(parseScheme("lru(kb=40,ways=10)"), SpecError);
    EXPECT_THROW(parseScheme("lru(kb=33)"), SpecError);
    // Cross-parameter CSHR geometry checks.
    EXPECT_THROW(parseScheme("acic(cshr=12)"), SpecError);
    EXPECT_THROW(parseScheme("acic(cshr_sets=3)"), SpecError);
    // Value sets only make sense in sweep grids.
    EXPECT_THROW(parseScheme("acic(filter={8,16})"), SpecError);
}

TEST(SchemeRegistry, SmallCshrShrinksSetsAutomatically)
{
    // 4-entry CSHR: the default 8 sets would not divide; the
    // builder follows the capacity down to 4 sets.
    const SchemeSpec spec = parseScheme("acic(cshr=4)");
    EXPECT_NO_THROW(makeScheme(spec, SimConfig{}));
}

// ------------------------------------------------------ sweep grids

TEST(SchemeRegistry, GridExpandsCartesianLeftmostSlowest)
{
    const auto grid = expandSchemeGrid(
        "acic(filter={8,16},cshr={64,256}),lru(ways={8,9})");
    ASSERT_EQ(grid.size(), 6u);
    EXPECT_EQ(grid[0].toString(), "acic(filter=8,cshr=64)");
    EXPECT_EQ(grid[1].toString(), "acic(filter=8,cshr=256)");
    EXPECT_EQ(grid[2].toString(), "acic(filter=16,cshr=64)");
    EXPECT_EQ(grid[3].toString(), "acic(filter=16,cshr=256)");
    EXPECT_EQ(grid[4].toString(), "lru(ways=8)");
    EXPECT_EQ(grid[5].toString(), "lru(ways=9)");
}

TEST(SchemeRegistry, GridValidatesEveryPoint)
{
    EXPECT_THROW(expandSchemeGrid("acic(filter={8,0})"), SpecError);
    EXPECT_THROW(expandSchemeGrid("acic(filter={})"), SpecError);
    EXPECT_THROW(expandSchemeGrid(""), SpecError);
    // A grid without sets is just a scheme list.
    const auto single = expandSchemeGrid("acic(filter=8)");
    ASSERT_EQ(single.size(), 1u);
    EXPECT_EQ(single[0].toString(), "acic(filter=8)");
}

TEST(SchemeRegistry, ParseSchemeListHandlesAllAndParens)
{
    EXPECT_EQ(parseSchemeList("all").size(), 22u);
    const auto list =
        parseSchemeList("lru,acic(filter=32,cshr=64),opt");
    ASSERT_EQ(list.size(), 3u);
    EXPECT_EQ(list[1].toString(), "acic(filter=32,cshr=64)");
    EXPECT_THROW(parseSchemeList(""), SpecError);
}

// ------------------------------------------- behavioural equivalence

TEST(SchemeRegistry, RegistryAcicMatchesHandBuiltOrg)
{
    // The pre-refactor Fig. 15 loop built variants via makeAcicOrg;
    // the registry path must reproduce those results exactly.
    auto params = Workloads::byName("web_search");
    params.instructions = 40'000;
    WorkloadContext context(params);

    for (const std::uint32_t filter : {8u, 16u, 32u}) {
        auto hand = makeAcicOrg(context.config(), PredictorConfig{},
                                CshrConfig{}, filter);
        const SimResult expected = context.run(*hand);
        const SimResult via_registry = context.run(parseScheme(
            "acic(filter=" + std::to_string(filter) + ")"));
        EXPECT_EQ(via_registry.cycles, expected.cycles) << filter;
        EXPECT_EQ(via_registry.l1iMisses, expected.l1iMisses)
            << filter;
    }

    // Parameter defaults equal the bare preset.
    const SimResult bare = context.run("acic");
    const SimResult spelled = context.run(
        "acic(filter=16,hrt=1024,history=4,counter=5,queue=10,"
        "update=pipelined,predictor=two_level,cshr=256,cshr_sets=8,"
        "tag=12,threshold=0)");
    EXPECT_EQ(bare.cycles, spelled.cycles);
    EXPECT_EQ(bare.l1iMisses, spelled.l1iMisses);
}

TEST(SchemeRegistry, LruCapacityParamsMatchFixedPresets)
{
    auto params = Workloads::byName("tpcc");
    params.instructions = 40'000;
    WorkloadContext context(params);

    const SimResult preset36 = context.run("36KB L1i");
    const SimResult ways9 = context.run("lru(ways=9)");
    EXPECT_EQ(preset36.cycles, ways9.cycles);
    EXPECT_EQ(preset36.l1iMisses, ways9.l1iMisses);

    const SimResult preset40 = context.run("40kb_l1i");
    const SimResult kb40 = context.run("lru(kb=40)");
    EXPECT_EQ(preset40.cycles, kb40.cycles);
    EXPECT_EQ(preset40.l1iMisses, kb40.l1iMisses);
}

TEST(SchemeRegistry, SweepGridRunsThroughDriver)
{
    // Acceptance shape: a sweep grid through the experiment driver
    // reproduces the serial hand-built results for every point.
    auto params = Workloads::byName("web_search");
    params.instructions = 40'000;

    ExperimentSpec spec;
    spec.workloads = {params};
    spec.schemes = expandSchemeGrid("acic(filter={8,16,32})");
    spec.instructions = params.instructions;
    spec.threads = 2;
    const auto cells = ExperimentDriver(spec).run();
    ASSERT_EQ(cells.size(), 3u);

    WorkloadContext serial(params);
    static const std::uint32_t kFilters[] = {8, 16, 32};
    for (std::size_t i = 0; i < cells.size(); ++i) {
        auto hand =
            makeAcicOrg(serial.config(), PredictorConfig{},
                        CshrConfig{}, kFilters[i]);
        const SimResult expected = serial.run(*hand);
        EXPECT_EQ(cells[i].result.cycles, expected.cycles) << i;
        EXPECT_EQ(cells[i].result.l1iMisses, expected.l1iMisses)
            << i;
        // Parameterized display names label the driver output.
        EXPECT_EQ(schemeName(spec.schemes[i]),
                  "acic(filter=" + std::to_string(kFilters[i]) +
                      ")");
    }
}

TEST(SchemeRegistry, OpenRegistration)
{
    // The registry is open: a new scheme lands as data, is listable,
    // parseable, buildable, and replaceable — no enum edit involved.
    SchemeRegistry::Entry entry;
    entry.key = "test_tiny_lru";
    entry.display = "Tiny LRU";
    entry.summary = "registration test";
    // Keep golden "--schemes all" runs stable: addressable by name,
    // excluded from the "all" list.
    entry.listed = false;
    entry.params = {ParamSpec::count("ways", "2", 1, 8, "ways")};
    entry.builder = [](const SimConfig &config, ParamReader &p,
                       const std::string &display) {
        return std::make_unique<PlainIcache>(
            config.l1iSets,
            static_cast<std::uint32_t>(p.count("ways", 2)),
            std::make_unique<LruPolicy>(), display);
    };
    SchemeRegistry::instance().add(entry);

    const SchemeSpec spec = parseScheme("Test-Tiny-LRU(ways=4)");
    EXPECT_EQ(spec.key, "test_tiny_lru");
    auto org = makeScheme(spec, SimConfig{});
    EXPECT_EQ(org->name(), "test_tiny_lru(ways=4)");
    EXPECT_EQ(schemeFromName("Tiny LRU")->key, "test_tiny_lru");

    // Same-key re-registration replaces in place.
    entry.summary = "replaced";
    SchemeRegistry::instance().add(entry);
    std::size_t hits = 0;
    for (const auto &e : SchemeRegistry::instance().entries())
        if (e.key == "test_tiny_lru") {
            ++hits;
            EXPECT_EQ(e.summary, "replaced");
        }
    EXPECT_EQ(hits, 1u);

    // Unlisted registrations never widen the "all" list, so golden
    // "--schemes all" outputs stay at the 22 paper presets.
    EXPECT_EQ(allSchemes().size(), 22u);

    // A listed registration joins "all" immediately (live view) —
    // and leaves it again when replaced unlisted.
    entry.listed = true;
    SchemeRegistry::instance().add(entry);
    EXPECT_EQ(allSchemes().size(), 23u);
    entry.listed = false;
    SchemeRegistry::instance().add(entry);
    EXPECT_EQ(allSchemes().size(), 22u);
}
