/**
 * @file
 * End-to-end battery for the streaming service, exercised through
 * the installed `acic_run` binary exactly as an operator would drive
 * it (DESIGN.md section 12):
 *
 *  - equivalence: `stream | serve -` over a recorded trace must
 *    reproduce the `run --no-oracle --dump-stats` golden dump
 *    byte-for-byte;
 *  - shutdown paths: clean end-of-stream exits 0; a SIGKILLed
 *    producer surfaces the named truncation diagnostic and exits
 *    nonzero; SIGTERM mid-stream is a clean (exit 0) shutdown;
 *    malformed input is refused loudly;
 *  - the bounded-memory soak: a 10M-instruction piped stream must
 *    finish with peak RSS bounded far below what buffering the
 *    stream would need, while emitting at least three rolling-window
 *    snapshots per scheme.
 *
 * POSIX-only (fork/exec/kill/pipes); the whole file is compiled out
 * on Windows.
 */

#ifndef _WIN32

#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>

#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fs = std::filesystem;

namespace {

// The sanitizers multiply RSS (shadow memory) and slow everything
// down; the soak shrinks and skips its memory assertion under them.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** Run @p cmd through the shell; return its exit status (or -1 if it
 *  died on a signal / could not spawn). */
int
runCommand(const std::string &cmd)
{
    const int status = std::system(cmd.c_str());
    if (status == -1 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

fs::path
scratchDir()
{
    static const fs::path dir = [] {
        fs::path d = fs::temp_directory_path() /
                     ("acic_serve_cli_" +
                      std::to_string(::getpid()));
        fs::create_directories(d);
        return d;
    }();
    return dir;
}

/** Everything from the first golden-dump separator on — strips the
 *  human-facing results table `run` prints before its dump. */
std::string
fromFirstDumpSeparator(const std::string &text)
{
    const std::size_t at = text.find("# workload=");
    return at == std::string::npos ? std::string() : text.substr(at);
}

/** Count lines containing @p needle. */
std::size_t
countLines(const std::string &text, const std::string &needle)
{
    std::istringstream in(text);
    std::string line;
    std::size_t n = 0;
    while (std::getline(in, line))
        if (line.find(needle) != std::string::npos)
            ++n;
    return n;
}

struct ChildProc
{
    pid_t pid = -1;
    /** waitpid + decode; -1 on signal death. */
    int wait(struct rusage *ru = nullptr) const
    {
        int status = 0;
        const pid_t got = ru ? ::wait4(pid, &status, 0, ru)
                             : ::waitpid(pid, &status, 0);
        if (got < 0 || !WIFEXITED(status))
            return -1;
        return WEXITSTATUS(status);
    }
};

/** fork + exec `sh -c cmd` with optional stdin/stderr redirection
 *  (paths; empty = inherit). */
ChildProc
spawnShell(const std::string &cmd, const std::string &stdin_path,
           const std::string &stderr_path)
{
    ChildProc child;
    child.pid = ::fork();
    if (child.pid == 0) {
        if (!stdin_path.empty()) {
            FILE *in = std::freopen(stdin_path.c_str(), "rb", stdin);
            if (!in)
                _exit(127);
        }
        if (!stderr_path.empty()) {
            FILE *err =
                std::freopen(stderr_path.c_str(), "wb", stderr);
            if (!err)
                _exit(127);
        }
        ::execl("/bin/sh", "sh", "-c", cmd.c_str(),
                static_cast<char *>(nullptr));
        _exit(127);
    }
    return child;
}

/** Record web_search to a trace file once; reused across tests. */
std::string
recordedTrace()
{
    static const std::string path = [] {
        const std::string dir = scratchDir().string();
        const int rc = runCommand(
            std::string(ACIC_RUN_BIN) +
            " record --workloads web_search --instructions 200000"
            " --out-dir " +
            dir + " > /dev/null 2>&1");
        EXPECT_EQ(rc, 0);
        return dir + "/web_search.acictrace";
    }();
    return path;
}

} // namespace

TEST(ServeCli, FinalStatsMatchFileRunByteForByte)
{
    const std::string dir = scratchDir().string();
    const std::string trace = recordedTrace();

    // File-based reference: run over the materialized trace with the
    // oracle disabled (a single-pass stream can never build one).
    const std::string run_out = dir + "/run_dump.txt";
    ASSERT_EQ(runCommand(std::string(ACIC_RUN_BIN) +
                         " run --workloads web_search --trace-dir " +
                         dir +
                         " --schemes acic,lru --no-oracle"
                         " --dump-stats --quiet > " +
                         run_out + " 2>/dev/null"),
              0);

    // Live pipeline over the identical records. run's warmup is
    // warmupFraction (0.10) of the 200000-instruction trace.
    const std::string serve_out = dir + "/serve_dump.txt";
    ASSERT_EQ(runCommand(std::string(ACIC_RUN_BIN) + " stream --trace " +
                         trace + " 2>/dev/null | " + ACIC_RUN_BIN +
                         " serve - --schemes acic,lru --warmup 20000"
                         " --window 50000 --quiet --stats-out " +
                         dir + "/eq_stats.jsonl --dump-stats > " +
                         serve_out + " 2>/dev/null"),
              0);

    const std::string want =
        fromFirstDumpSeparator(readAll(run_out));
    const std::string got =
        fromFirstDumpSeparator(readAll(serve_out));
    ASSERT_FALSE(want.empty());
    EXPECT_EQ(want, got)
        << "streamed statistics diverged from the file-based run";

    // Rolling stats emitted along the way, one line per scheme per
    // window boundary.
    const std::string stats = readAll(dir + "/eq_stats.jsonl");
    EXPECT_GE(countLines(stats, "\"ev\":\"serve.window\""), 3u);
    EXPECT_EQ(countLines(stats, "\"ev\":\"serve.final\""), 2u);
}

TEST(ServeCli, MalformedInputExitsNonzeroWithDiagnostic)
{
    const std::string dir = scratchDir().string();
    const std::string garbage = dir + "/garbage.acis";
    {
        std::ofstream out(garbage, std::ios::binary);
        out << "this is not an instruction stream at all";
    }
    const std::string err = dir + "/garbage.err";
    ASSERT_EQ(runCommand(std::string(ACIC_RUN_BIN) + " serve " +
                         garbage + " --schemes lru --quiet"
                         " --stats-out /dev/null 2> " + err),
              1);
    const std::string diag = readAll(err);
    EXPECT_NE(diag.find("magic"), std::string::npos) << diag;
    EXPECT_NE(diag.find("acic_run stream"), std::string::npos)
        << diag;
}

TEST(ServeCli, TruncatedStreamFileExitsNonzero)
{
    const std::string dir = scratchDir().string();
    const std::string framed = dir + "/trunc_src.acis";
    ASSERT_EQ(runCommand(std::string(ACIC_RUN_BIN) +
                         " stream --workloads web_search"
                         " --instructions 50000 --out " +
                         framed + " 2>/dev/null"),
              0);
    // Drop the end-of-stream frame and half the last data frame.
    const auto size = fs::file_size(framed);
    fs::resize_file(framed, size - size / 3);

    const std::string err = dir + "/trunc.err";
    ASSERT_EQ(runCommand(std::string(ACIC_RUN_BIN) + " serve " +
                         framed + " --schemes acic --quiet"
                         " --stats-out /dev/null 2> " + err),
              1);
    const std::string diag = readAll(err);
    EXPECT_NE(diag.find("producer likely died"), std::string::npos)
        << diag;
}

TEST(ServeCli, ProducerSigkillSurfacesTruncation)
{
    // A live feeder killed mid-stream: serve must notice the torn
    // stream (EOF without the end-of-stream frame), report the named
    // diagnostic, and exit nonzero — not hang, not exit clean.
    const std::string dir = scratchDir().string();
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);

    const pid_t producer = ::fork();
    ASSERT_GE(producer, 0);
    if (producer == 0) {
        ::dup2(fds[1], STDOUT_FILENO);
        ::close(fds[0]);
        ::close(fds[1]);
        ::execl(ACIC_RUN_BIN, ACIC_RUN_BIN, "stream", "--workloads",
                "web_search", "--instructions", "50000000",
                static_cast<char *>(nullptr));
        _exit(127);
    }

    const std::string err = dir + "/sigkill.err";
    const pid_t server = ::fork();
    ASSERT_GE(server, 0);
    if (server == 0) {
        ::dup2(fds[0], STDIN_FILENO);
        ::close(fds[0]);
        ::close(fds[1]);
        FILE *e = std::freopen(err.c_str(), "wb", stderr);
        if (!e)
            _exit(127);
        ::execl(ACIC_RUN_BIN, ACIC_RUN_BIN, "serve", "-", "--schemes",
                "acic,lru", "--quiet", "--stats-out", "/dev/null",
                static_cast<char *>(nullptr));
        _exit(127);
    }
    ::close(fds[0]);
    ::close(fds[1]);

    // Let the pipeline reach steady state, then kill the feeder hard.
    ::usleep(500 * 1000);
    ASSERT_EQ(::kill(producer, SIGKILL), 0);
    int status = 0;
    ::waitpid(producer, &status, 0);

    ::waitpid(server, &status, 0);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 1);
    const std::string diag = readAll(err);
    EXPECT_NE(diag.find("producer likely died"), std::string::npos)
        << diag;
}

TEST(ServeCli, SigtermIsCleanShutdown)
{
    // An idle-but-live stream (records delivered, write end held
    // open, no EOF): SIGTERM must produce an orderly exit 0 with the
    // shutdown reason in the summary.
    const std::string dir = scratchDir().string();
    const std::string framed = dir + "/term_src.acis";
    ASSERT_EQ(runCommand(std::string(ACIC_RUN_BIN) +
                         " stream --workloads web_search"
                         " --instructions 20000 --out " +
                         framed + " 2>/dev/null"),
              0);
    // Feed the frames but never the EOF: strip the end-of-stream
    // frame so serve keeps waiting for more traffic.
    std::string bytes = readAll(framed);
    bytes.resize(bytes.size() - 20); // EOS frame: one header's worth

    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::string err = dir + "/term.err";
    const pid_t server = ::fork();
    ASSERT_GE(server, 0);
    if (server == 0) {
        ::dup2(fds[0], STDIN_FILENO);
        ::close(fds[0]);
        ::close(fds[1]);
        FILE *e = std::freopen(err.c_str(), "wb", stderr);
        if (!e)
            _exit(127);
        ::execl(ACIC_RUN_BIN, ACIC_RUN_BIN, "serve", "-", "--schemes",
                "acic", "--stats-out", "/dev/null",
                static_cast<char *>(nullptr));
        _exit(127);
    }
    ::close(fds[0]);
    ASSERT_EQ(::write(fds[1], bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));
    // Keep fds[1] open: no EOF, serve idles on the live stream.
    ::usleep(500 * 1000);
    ASSERT_EQ(::kill(server, SIGTERM), 0);
    int status = 0;
    ::waitpid(server, &status, 0);
    ::close(fds[1]);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    EXPECT_NE(readAll(err).find("stopped by signal"),
              std::string::npos)
        << readAll(err);
}

namespace {

/** Total CPU ticks (utime + stime) of @p pid from /proc/<pid>/stat;
 *  -1 when procfs is unavailable. The comm field may contain spaces,
 *  so parsing restarts after the closing paren. */
long
procCpuTicks(pid_t pid)
{
    std::ifstream in("/proc/" + std::to_string(pid) + "/stat");
    std::string stat;
    std::getline(in, stat);
    const std::size_t paren = stat.rfind(')');
    if (!in || paren == std::string::npos)
        return -1;
    std::istringstream fields(stat.substr(paren + 1));
    std::string tok;
    // After ")": state is field 1; utime is field 12, stime 13.
    long utime = -1, stime = -1;
    for (int i = 1; i <= 13 && (fields >> tok); ++i) {
        if (i == 12)
            utime = std::strtol(tok.c_str(), nullptr, 10);
        if (i == 13)
            stime = std::strtol(tok.c_str(), nullptr, 10);
    }
    if (utime < 0 || stime < 0)
        return -1;
    return utime + stime;
}

/** Remove every wall-clock-dependent "minst_per_s":<number> field
 *  from a stats JSONL blob, so runs can be compared byte-wise. */
std::string
scrubThroughput(std::string text)
{
    const std::string key = "\"minst_per_s\":";
    for (std::size_t at = text.find(key);
         at != std::string::npos; at = text.find(key, at)) {
        std::size_t end = at + key.size();
        while (end < text.size() && text[end] != ',' &&
               text[end] != '}')
            ++end;
        text.erase(at, end - at);
        if (at < text.size() && text[at] == ',')
            text.erase(at, 1);
        else if (at > 0 && text[at - 1] == ',')
            text.erase(at - 1, 1);
    }
    return text;
}

} // namespace

TEST(ServeCli, IdleStreamBurnsNoCpu)
{
    // The event-driven-wakeup guarantee: a serve process parked on a
    // live-but-silent stream (records delivered, write end open, no
    // new traffic) must sit in poll(2)/CV sleeps — a busy-wait or
    // fast poll tick here shows up directly as utime/stime ticks.
    const std::string dir = scratchDir().string();
    const std::string framed = dir + "/idle_src.acis";
    ASSERT_EQ(runCommand(std::string(ACIC_RUN_BIN) +
                         " stream --workloads web_search"
                         " --instructions 20000 --out " +
                         framed + " 2>/dev/null"),
              0);
    std::string bytes = readAll(framed);
    bytes.resize(bytes.size() - 20); // strip the EOS frame

    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const pid_t server = ::fork();
    ASSERT_GE(server, 0);
    if (server == 0) {
        ::dup2(fds[0], STDIN_FILENO);
        ::close(fds[0]);
        ::close(fds[1]);
        FILE *e = std::freopen("/dev/null", "wb", stderr);
        if (!e)
            _exit(127);
        ::execl(ACIC_RUN_BIN, ACIC_RUN_BIN, "serve", "-", "--schemes",
                "acic,lru", "--quiet", "--stats-out", "/dev/null",
                static_cast<char *>(nullptr));
        _exit(127);
    }
    ::close(fds[0]);
    ASSERT_EQ(::write(fds[1], bytes.data(), bytes.size()),
              static_cast<ssize_t>(bytes.size()));

    // Let startup + the 20k-instruction burst finish, then measure
    // CPU consumed across a pure-idle window.
    ::usleep(500 * 1000);
    const long before = procCpuTicks(server);
    ::usleep(2500 * 1000);
    const long after = procCpuTicks(server);

    ASSERT_EQ(::kill(server, SIGTERM), 0);
    int status = 0;
    ::waitpid(server, &status, 0);
    ::close(fds[1]);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);

    if (before < 0 || after < 0)
        GTEST_SKIP() << "/proc/<pid>/stat unavailable";
    // 2.5 s of busy-waiting would be ~250 ticks at the usual 100 Hz;
    // an event-driven idle is 0. Allow a generous margin for stray
    // scheduler noise (and sanitizer bookkeeping).
    const long budget = kSanitized ? 100 : 25;
    EXPECT_LE(after - before, budget)
        << "serve burned CPU while the stream was idle";
}

TEST(ServeCli, ThreadCountNeverChangesOutput)
{
    // The parallel-rounds determinism contract: --threads trades
    // wall time only. The golden dump must be byte-identical and the
    // stats JSONL identical up to the wall-clock minst_per_s field
    // for serial, undersubscribed, and oversubscribed thread counts.
    const std::string dir = scratchDir().string();
    const std::string trace = recordedTrace();
    const std::string framed = dir + "/threads_src.acis";
    ASSERT_EQ(runCommand(std::string(ACIC_RUN_BIN) +
                         " stream --trace " + trace + " --out " +
                         framed + " 2>/dev/null"),
              0);

    const char *schemes = "lru,srrip,acic,acic_instant,opt_bypass";
    std::vector<std::string> dumps, stats;
    for (const char *threads : {"1", "2", "8"}) {
        const std::string tag = dir + "/threads_" + threads;
        ASSERT_EQ(runCommand(std::string(ACIC_RUN_BIN) + " serve " +
                             framed + " --schemes " + schemes +
                             " --warmup 20000 --window 50000"
                             " --threads " + threads +
                             " --quiet --stats-out " + tag +
                             ".jsonl --dump-stats > " + tag +
                             ".dump 2>/dev/null"),
                  0)
            << "--threads " << threads;
        dumps.push_back(readAll(tag + ".dump"));
        stats.push_back(scrubThroughput(readAll(tag + ".jsonl")));
    }
    ASSERT_FALSE(dumps[0].empty());
    EXPECT_EQ(dumps[0], dumps[1]) << "--threads 2 changed the dump";
    EXPECT_EQ(dumps[0], dumps[2]) << "--threads 8 changed the dump";
    ASSERT_NE(stats[0].find("\"ev\":\"serve.window\""),
              std::string::npos);
    EXPECT_EQ(stats[0], stats[1]) << "--threads 2 changed the stats";
    EXPECT_EQ(stats[0], stats[2]) << "--threads 8 changed the stats";
}

TEST(ServeCli, SoakTenMillionInstructionsBoundedMemory)
{
    // The acceptance soak: a >=10M-instruction piped stream (2M
    // under sanitizers, where everything is ~10x slower) must finish
    // cleanly with peak RSS a small multiple of the ring + engines —
    // nowhere near the ~240MB that buffering the decoded stream
    // would take — and emit rolling windows throughout.
    const char *insts = kSanitized ? "2000000" : "10000000";
    const std::string dir = scratchDir().string();
    const std::string stats = dir + "/soak_stats.jsonl";
    const std::string cmd =
        std::string(ACIC_RUN_BIN) +
        " stream --workloads web_search --instructions " + insts +
        " 2>/dev/null | " + ACIC_RUN_BIN +
        " serve - --schemes acic,lru --warmup 500000"
        " --window 500000 --quiet --stats-out " +
        stats;

    struct rusage ru = {};
    const ChildProc child = spawnShell(cmd, "", dir + "/soak.err");
    ASSERT_EQ(child.wait(&ru), 0) << readAll(dir + "/soak.err");

    // ru_maxrss covers the shell's whole waited-for pipeline; the
    // producer is tiny, so this is effectively serve's peak. Linux
    // reports kilobytes.
    if (!kSanitized) {
        EXPECT_LE(ru.ru_maxrss, 150 * 1024)
            << "serve's memory scaled with stream length";
    }

    const std::string lines = readAll(stats);
    EXPECT_GE(countLines(lines, "\"ev\":\"serve.window\""), 3u);
    EXPECT_EQ(countLines(lines, "\"ev\":\"serve.final\""), 2u);
    // Spot-check the JSONL shape the dashboard consumes.
    EXPECT_NE(lines.find("\"window_mpki\":"), std::string::npos);
    EXPECT_NE(lines.find("\"window_ipc\":"), std::string::npos);
    EXPECT_NE(lines.find("\"minst_per_s\":"), std::string::npos);
}

TEST(StreamCli, UsageErrors)
{
    // Exactly one of --workloads / --trace.
    EXPECT_EQ(runCommand(std::string(ACIC_RUN_BIN) +
                         " stream > /dev/null 2>&1"),
              2);
    EXPECT_EQ(runCommand(std::string(ACIC_RUN_BIN) +
                         " stream --workloads web_search --trace"
                         " x.acictrace > /dev/null 2>&1"),
              2);
    // serve requires an input and --schemes.
    EXPECT_EQ(runCommand(std::string(ACIC_RUN_BIN) +
                         " serve > /dev/null 2>&1"),
              2);
    EXPECT_EQ(runCommand(std::string(ACIC_RUN_BIN) +
                         " serve - > /dev/null 2>&1"),
              2);
    // Bad scheme spec in serve is a usage error too.
    EXPECT_EQ(runCommand(std::string(ACIC_RUN_BIN) +
                         " serve /dev/null --schemes nosuch"
                         " > /dev/null 2>&1"),
              2);
    // --threads must be a positive count (0 means "auto" only by
    // omission).
    EXPECT_EQ(runCommand(std::string(ACIC_RUN_BIN) +
                         " serve /dev/null --schemes lru --threads 0"
                         " > /dev/null 2>&1"),
              2);
}

TEST(StreamCli, FifoPipelineDeliversStream)
{
    // The documented FIFO deployment: serve attaches to a named
    // pipe, a producer appears later and streams through it.
    const std::string dir = scratchDir().string();
    const std::string fifo = dir + "/insts.fifo";
    ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0);

    const std::string stats = dir + "/fifo_stats.jsonl";
    const ChildProc server = spawnShell(
        std::string(ACIC_RUN_BIN) + " serve pipe:" + fifo +
            " --schemes acic --quiet --window 20000 --stats-out " +
            stats,
        "", dir + "/fifo.err");

    // The producer's open(2) of the FIFO rendezvouses with serve's.
    ASSERT_EQ(runCommand(std::string(ACIC_RUN_BIN) +
                         " stream --workloads web_search"
                         " --instructions 100000 --out " +
                         fifo + " 2>/dev/null"),
              0);
    ASSERT_EQ(server.wait(), 0) << readAll(dir + "/fifo.err");
    const std::string lines = readAll(stats);
    EXPECT_GE(countLines(lines, "\"ev\":\"serve.window\""), 3u);
    EXPECT_EQ(countLines(lines, "\"instructions\":100000"), 1u);
}

#endif // _WIN32
