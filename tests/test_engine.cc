/**
 * @file
 * Tests of the resumable simulation engine (sim/engine.hh): the
 * warmUp()/measure() phase API must reproduce the legacy monolithic
 * run() bit-for-bit (the K=1 acceptance criterion), the warmup
 * snapshot must latch exactly once — including under the
 * ACIC_TRACE_LEN override, where tiny trace lengths drive
 * warmupFraction to degenerate values — and mergeSimResults() must
 * recompute derived rates from summed counters.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "driver/emitters.hh"
#include "sim/engine.hh"
#include "sim/runner.hh"
#include "trace/workload_params.hh"

using namespace acic;

namespace {

/** Small shared workload; fixed length, immune to ACIC_TRACE_LEN. */
const SharedWorkload &
workload()
{
    static const SharedWorkload shared = [] {
        WorkloadParams params = Workloads::byName("web_search");
        params.instructions = 60'000;
        return SharedWorkload(params);
    }();
    return shared;
}

std::string
dumpOf(const SimResult &result)
{
    std::ostringstream out;
    writeGoldenDump(out, result);
    return out.str();
}

/** Run the phase API with an explicit warmup/measure split. */
SimResult
phasedRun(const SharedWorkload &shared, const std::string &spec,
          std::uint64_t warmup, std::uint64_t measured)
{
    auto org = makeScheme(parseScheme(spec), shared.config());
    MemoryTraceSource cursor = shared.source();
    SimEngine engine(shared.config(), cursor, *org,
                     &shared.oracle());
    engine.warmUp(warmup);
    engine.measure(measured);
    return engine.finish();
}

} // namespace

TEST(SimEngine, PhaseApiMatchesLegacyRunBitForBit)
{
    const SharedWorkload &shared = workload();
    const std::uint64_t total = shared.instructions();
    const auto warmup = static_cast<std::uint64_t>(
        static_cast<double>(total) *
        shared.config().warmupFraction);

    for (const char *spec : {"lru", "acic", "srrip", "opt_bypass"}) {
        const SimResult legacy = shared.run(std::string(spec));
        const SimResult phased =
            phasedRun(shared, spec, warmup, total - warmup);
        EXPECT_EQ(dumpOf(legacy), dumpOf(phased)) << spec;
    }
}

TEST(SimEngine, MeasureWithoutWarmupLatchesAtStart)
{
    const SharedWorkload &shared = workload();
    const std::uint64_t total = shared.instructions();

    // measure() with no prior warmUp() must behave as warmUp(0):
    // the snapshot latches before the first cycle and the whole
    // trace is measured.
    auto org = makeScheme(parseScheme("lru"), shared.config());
    MemoryTraceSource cursor = shared.source();
    SimEngine engine(shared.config(), cursor, *org,
                     &shared.oracle());
    engine.measure(total);
    const SimResult all = engine.finish();
    EXPECT_EQ(all.instructions, total);
    EXPECT_EQ(dumpOf(all), dumpOf(phasedRun(shared, "lru", 0, total)));
}

TEST(SimEngine, MeasurePhasesAccumulate)
{
    const SharedWorkload &shared = workload();
    const std::uint64_t total = shared.instructions();
    const std::uint64_t warmup = total / 10;

    // Two measure() calls must equal one covering the same span —
    // resumability: stopping and continuing is invisible.
    auto org = makeScheme(parseScheme("acic"), shared.config());
    MemoryTraceSource cursor = shared.source();
    SimEngine engine(shared.config(), cursor, *org,
                     &shared.oracle());
    engine.warmUp(warmup);
    const std::uint64_t first = (total - warmup) / 3;
    engine.measure(first);
    engine.measure(total - warmup - first);
    EXPECT_EQ(dumpOf(engine.finish()),
              dumpOf(phasedRun(shared, "acic", warmup,
                               total - warmup)));
}

TEST(SimEngine, TraceLenOverrideSnapshotsWarmupExactlyOnce)
{
    // ACIC_TRACE_LEN shrinks the trace under the same
    // warmupFraction; the warmup snapshot must still latch exactly
    // once and the phase API must match legacy run() bit-for-bit on
    // the overridden length (including length 1, where the warmup
    // rounds to zero instructions and the snapshot latches before
    // the first cycle).
    for (const char *len : {"30000", "5000", "1"}) {
        ASSERT_EQ(setenv("ACIC_TRACE_LEN", len, 1), 0);
        WorkloadParams params = Workloads::byName("tpcc");
        const WorkloadParams effective =
            WorkloadContext::withEnvOverrides(params);
        unsetenv("ACIC_TRACE_LEN");
        ASSERT_EQ(effective.instructions,
                  std::strtoull(len, nullptr, 10));

        const SharedWorkload shared(effective);
        const std::uint64_t total = shared.instructions();
        const auto warmup = static_cast<std::uint64_t>(
            static_cast<double>(total) *
            shared.config().warmupFraction);

        const SimResult legacy = shared.run(std::string("acic"));
        // The measured span is the nominal post-warmup region even
        // when retirement overshoots the warmup target mid-cycle —
        // a second snapshot would shrink it.
        EXPECT_EQ(legacy.instructions, total - warmup) << len;
        const SimResult phased =
            phasedRun(shared, "acic", warmup, total - warmup);
        EXPECT_EQ(dumpOf(legacy), dumpOf(phased)) << len;
    }
}

TEST(MergeSimResults, SumsCountersAndRecomputesRates)
{
    SimResult a;
    a.workload = "w";
    a.scheme = "s";
    a.instructions = 1000;
    a.cycles = 2000;
    a.l1iMisses = 10;
    a.demandAccesses = 300;
    a.orgStats.bump("org.x", 5);

    SimResult b;
    b.workload = "w";
    b.scheme = "s";
    b.instructions = 3000;
    b.cycles = 2000;
    b.l1iMisses = 50;
    b.demandAccesses = 900;
    b.orgStats.bump("org.x", 7);
    b.orgStats.bump("org.y", 1);

    const SimResult merged = mergeSimResults({a, b});
    EXPECT_EQ(merged.workload, "w");
    EXPECT_EQ(merged.instructions, 4000u);
    EXPECT_EQ(merged.cycles, 4000u);
    EXPECT_EQ(merged.l1iMisses, 60u);
    EXPECT_EQ(merged.demandAccesses, 1200u);
    // Rates recompute from the sums (instruction-weighted), not
    // from averaging the per-part rates.
    EXPECT_DOUBLE_EQ(merged.ipc(), 1.0);
    EXPECT_DOUBLE_EQ(merged.mpki(), 15.0);
    EXPECT_EQ(merged.orgStats.get("org.x"), 12u);
    EXPECT_EQ(merged.orgStats.get("org.y"), 1u);
}

TEST(SimInterval, PlanCoversMeasuredRegionExactly)
{
    const auto plan = planIntervals(1000, 10'000, 4, 600);
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan.front().begin, 1000u);
    EXPECT_EQ(plan.back().end, 10'000u);
    for (std::size_t i = 0; i < plan.size(); ++i) {
        if (i > 0)
            EXPECT_EQ(plan[i].begin, plan[i - 1].end);
        EXPECT_EQ(plan[i].warmup(),
                  plan[i].begin >= 600 ? 600u : plan[i].begin);
        EXPECT_LE(plan[i].funcStart, plan[i].warmStart);
    }
    // Warmup clips at the trace start.
    const auto clipped = planIntervals(100, 4100, 2, 600);
    EXPECT_EQ(clipped.front().warmStart, 0u);
}

TEST(SimInterval, PlanClampsDegenerateShapes)
{
    // More intervals than instructions collapse to one per inst.
    EXPECT_EQ(planIntervals(0, 3, 8, 0).size(), 3u);
    // An empty region yields a single empty interval.
    const auto empty = planIntervals(500, 500, 4, 100);
    ASSERT_EQ(empty.size(), 1u);
    EXPECT_EQ(empty.front().measured(), 0u);
    // The horizon bounds the functional prefix.
    const auto bounded = planIntervals(0, 9000, 3, 100, 1000);
    for (const SimInterval &iv : bounded)
        EXPECT_LE(iv.warmStart - iv.funcStart, 1000u);
}

TEST(SimEngine, FullWarmupShardsMergeToFullRunUpToSeamCycles)
{
    // With warmStart = 0 (every shard replays the whole prefix
    // under full timing) each shard walks the monolithic trajectory
    // up to seam effects, so merged counters equal the full run's
    // within structural bounds per seam: (a) a shard's last cycle
    // runs to completion while the next shard's snapshot latches
    // mid-cycle at its retire stage, double-counting the post-retire
    // stages of each of the K-1 seam cycles; (b) a shard's walker
    // ends at its region boundary, so the BP unit's FTQ runahead
    // past the seam (up to ftqEntries x fetchWidth instructions,
    // counted inside the next shard's snapshot) is seen by neither
    // side; and (c) the missing runahead perturbs in-flight
    // prefetch/MSHR pressure for the few hundred cycles before the
    // seam. All three are O(FTQ) per seam, independent of the
    // interval length — which is the property under test.
    const SharedWorkload &shared = workload();
    const std::uint64_t total = shared.instructions();
    const auto warm = static_cast<std::uint64_t>(
        static_cast<double>(total) *
        shared.config().warmupFraction);
    const SimResult full = shared.run(std::string("acic"));

    constexpr unsigned kShards = 3;
    std::vector<SimResult> parts;
    const auto plan = planIntervals(warm, total, kShards, 0);
    for (SimInterval iv : plan) {
        iv.warmStart = 0; // full timed history
        iv.funcStart = 0;
        parts.push_back(
            shared.runInterval(parseScheme("acic"), iv));
    }
    const SimResult merged = mergeSimResults(parts);
    const std::uint64_t seams = kShards - 1;

    EXPECT_EQ(merged.instructions, full.instructions);
    const auto near = [seams](std::uint64_t got, std::uint64_t want,
                              std::uint64_t per_seam,
                              const char *what) {
        const std::uint64_t slack = seams * per_seam;
        EXPECT_GE(got + slack, want) << what;
        EXPECT_LE(got, want + slack) << what;
    };
    near(merged.cycles, full.cycles + seams, 64, "cycles");
    near(merged.demandAccesses, full.demandAccesses, 32, "demand");
    near(merged.l1iMisses, full.l1iMisses, 32, "misses");
    // The FTQ runahead holds up to 24 bundles x 6 instructions.
    near(merged.branchMispredicts, full.branchMispredicts, 160,
         "mispredicts");
    near(merged.btbMisses, full.btbMisses, 160, "btb");
    near(merged.prefetchesIssued, full.prefetchesIssued, 32, "pf");
    near(merged.latePrefetches, full.latePrefetches, 32, "late");
}

