/**
 * @file
 * Tests of the direct bypass policies: DSB's adaptive probability and
 * duel resolution, OBM's RHT/BDCT training loop, and their
 * integration hooks.
 */

#include <gtest/gtest.h>

#include "bypass/dsb.hh"
#include "bypass/obm.hh"
#include "cache/lru.hh"
#include "common/rng.hh"

using namespace acic;

namespace {

CacheAccess
access(BlockAddr blk, Addr pc = 0x9000)
{
    CacheAccess a;
    a.blk = blk;
    a.pc = pc;
    return a;
}

SetAssocCache
warmCache()
{
    SetAssocCache cache(4, 2, std::make_unique<LruPolicy>());
    for (BlockAddr b = 0; b < 8; ++b)
        cache.fill(access(b));
    return cache;
}

} // namespace

TEST(Dsb, StartsAtMidProbability)
{
    DsbBypass dsb;
    EXPECT_NEAR(dsb.bypassProbability(), 0.5, 0.01);
}

TEST(Dsb, BadBypassesLowerProbability)
{
    DsbBypass dsb;
    auto cache = warmCache();
    // Every bypassed block is immediately re-accessed: bypassing is
    // always wrong, so the probability must decay.
    for (int i = 0; i < 2000; ++i) {
        CacheAccess incoming = access(100 + (i % 4) * 4);
        if (dsb.shouldBypass(incoming, cache))
            dsb.onDemandAccess(incoming, cache);
    }
    EXPECT_LT(dsb.bypassProbability(), 0.5);
}

TEST(Dsb, GoodBypassesRaiseProbability)
{
    DsbBypass dsb;
    auto cache = warmCache();
    // The spared (would-be victim) line is always re-used first:
    // bypassing was right, probability must climb.
    for (int i = 0; i < 2000; ++i) {
        CacheAccess incoming = access(100 + i * 4);
        dsb.shouldBypass(incoming, cache);
        // Touch every resident line: resolves duels in favour of
        // the spared line.
        for (BlockAddr b = 0; b < 8; ++b)
            dsb.onDemandAccess(access(b), cache);
    }
    EXPECT_GT(dsb.bypassProbability(), 0.5);
}

TEST(Dsb, ReportsStorage)
{
    EXPECT_GT(DsbBypass().storageBits(), 0u);
    EXPECT_EQ(DsbBypass().name(), "DSB");
}

TEST(Obm, VictimFirstReuseTrainsTowardBypass)
{
    ObmBypass obm(/*sample_rate=*/1.0, /*seed=*/3);
    auto cache = warmCache();
    const Addr pc = 0xabc0;
    // Incoming blocks never return; the victim line always returns
    // first -> bypassing this signature becomes attractive.
    bool initially = obm.shouldBypass(access(1000, pc), cache);
    (void)initially;
    for (int i = 0; i < 200; ++i) {
        obm.shouldBypass(access(2000 + i, pc), cache);
        for (BlockAddr b = 0; b < 8; ++b)
            obm.onDemandAccess(access(b), cache);
    }
    EXPECT_TRUE(obm.shouldBypass(access(5000, pc), cache));
}

TEST(Obm, IncomingFirstReuseTrainsTowardInsert)
{
    ObmBypass obm(1.0, 5);
    auto cache = warmCache();
    const Addr pc = 0xdef0;
    for (int i = 0; i < 200; ++i) {
        const BlockAddr blk = 3000 + i;
        obm.shouldBypass(access(blk, pc), cache);
        // The incoming block returns before any victim line.
        obm.onDemandAccess(access(blk, pc), cache);
    }
    EXPECT_FALSE(obm.shouldBypass(access(6000, pc), cache));
}

TEST(Obm, StorageMatchesTableIV)
{
    // 128 x (21+21+10) + 1024 x 4 + 10 bits ~= 1.41 KB (Table IV).
    EXPECT_NEAR(static_cast<double>(ObmBypass().storageBits()) / 8.0 /
                    1024.0,
                1.41, 0.15);
}
