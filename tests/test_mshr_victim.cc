/**
 * @file
 * Tests of the MSHR file, the victim caches (VC3K/VC8K), the virtual
 * victim cache, and the memory hierarchy latencies.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cache/mshr.hh"
#include "cache/victim_cache.hh"
#include "cache/vvc.hh"

using namespace acic;

TEST(Mshr, AllocateMergeFull)
{
    MshrFile mshr(2);
    EXPECT_EQ(mshr.allocate(1, 10, false), MshrOutcome::Allocated);
    EXPECT_EQ(mshr.allocate(1, 12, false), MshrOutcome::Merged);
    EXPECT_EQ(mshr.allocate(2, 10, false), MshrOutcome::Allocated);
    EXPECT_EQ(mshr.allocate(3, 10, false), MshrOutcome::Full);
    EXPECT_TRUE(mshr.full());
    EXPECT_EQ(mshr.inFlight(), 2u);
}

TEST(Mshr, MergeKeepsEarlierReadyCycle)
{
    MshrFile mshr(4);
    mshr.allocate(1, 100, true);
    mshr.allocate(1, 50, false);
    EXPECT_EQ(mshr.readyCycle(1), 50u);
}

TEST(Mshr, DemandPromotesPrefetchMiss)
{
    MshrFile mshr(4);
    mshr.allocate(7, 20, true, 0x100, 5);
    mshr.allocate(7, 25, false, 0x200, 9);
    std::vector<MshrFile::Fill> fills;
    mshr.popReady(30, fills);
    ASSERT_EQ(fills.size(), 1u);
    EXPECT_TRUE(fills[0].wasPrefetch);
    EXPECT_TRUE(fills[0].demandWaiting);
    EXPECT_EQ(fills[0].seq, 9u);
}

TEST(Mshr, PopReadyRespectsDueCycle)
{
    MshrFile mshr(4);
    mshr.allocate(1, 10, false);
    mshr.allocate(2, 20, false);
    std::vector<MshrFile::Fill> fills;
    EXPECT_EQ(mshr.popReady(5, fills), 0u);
    EXPECT_EQ(mshr.popReady(10, fills), 1u);
    EXPECT_EQ(fills[0].blk, 1u);
    EXPECT_TRUE(mshr.pending(2));
    EXPECT_FALSE(mshr.pending(1));
    fills.clear();
    EXPECT_EQ(mshr.popReady(100, fills), 1u);
    EXPECT_EQ(mshr.inFlight(), 0u);
}

TEST(Mshr, ClearDropsEverything)
{
    MshrFile mshr(4);
    mshr.allocate(1, 10, false);
    mshr.clear();
    EXPECT_EQ(mshr.inFlight(), 0u);
    EXPECT_FALSE(mshr.pending(1));
}

TEST(VictimCache, Vc3kGeometry)
{
    const auto vc = VictimCache::vc3k();
    EXPECT_EQ(vc.capacityBlocks(), 48u);
    // 48 x 64 B = 3 KB of data.
    EXPECT_GE(vc.storageBits(), 48u * 64 * 8);
}

TEST(VictimCache, Vc8kGeometry)
{
    const auto vc = VictimCache::vc8k();
    EXPECT_EQ(vc.capacityBlocks(), 128u);
}

TEST(VictimCache, ExtractRemovesOnHit)
{
    auto vc = VictimCache::vc3k();
    vc.insert(42);
    EXPECT_TRUE(vc.probe(42));
    EXPECT_TRUE(vc.extract(42));
    EXPECT_FALSE(vc.probe(42));
    EXPECT_FALSE(vc.extract(42));
}

TEST(VictimCache, LruDisplacementWhenFull)
{
    VictimCache vc(4, 4); // fully associative, 4 blocks
    for (BlockAddr b = 0; b < 4; ++b)
        vc.insert(b);
    vc.insert(99); // displaces 0 (oldest)
    EXPECT_FALSE(vc.probe(0));
    EXPECT_TRUE(vc.probe(99));
    EXPECT_TRUE(vc.probe(1));
}

TEST(Vvc, ParkedVictimHitsInPartnerSet)
{
    VvcCache vvc(4, 2);
    // Fill set 0 beyond capacity; victims park in partner set 1.
    const auto acc = [](BlockAddr blk) {
        CacheAccess a;
        a.blk = blk;
        a.pc = 0x100;
        return a;
    };
    vvc.fill(acc(0));  // set 0
    vvc.fill(acc(4));  // set 0
    vvc.fill(acc(8));  // set 0 -> evicts 0, parks it in set 1
    EXPECT_TRUE(vvc.contains(8));
    // Block 0 must still be findable via its virtual copy.
    EXPECT_TRUE(vvc.contains(0));
    EXPECT_TRUE(vvc.access(acc(0))); // virtual hit swaps it back
    EXPECT_TRUE(vvc.contains(0));
}

TEST(Vvc, StorageMatchesTableIV)
{
    const VvcCache vvc(64, 8);
    EXPECT_NEAR(static_cast<double>(vvc.storageOverheadBits()) /
                    8.0 / 1024.0,
                9.06, 1.0);
}

TEST(Hierarchy, LatenciesPerLevel)
{
    MemoryHierarchy hierarchy;
    // Cold miss goes to DRAM.
    const Cycle first = hierarchy.serviceMiss(1234, 0x100);
    EXPECT_EQ(first, 35u + 200u);
    // Now resident in L2.
    const Cycle second = hierarchy.serviceMiss(1234, 0x100);
    EXPECT_EQ(second, 15u);
    EXPECT_EQ(hierarchy.stats().get("hier.dram_access"), 1u);
    EXPECT_EQ(hierarchy.stats().get("hier.l2_hit"), 1u);
}

TEST(Hierarchy, L3HitAfterL2Eviction)
{
    HierarchyConfig config;
    config.l2Bytes = 2 * 64 * 8; // tiny 2-set L2 to force eviction
    config.l2Ways = 8;
    MemoryHierarchy hierarchy(config);
    hierarchy.serviceMiss(0, 0);
    // Evict block 0 from L2 by filling its set.
    for (BlockAddr b = 1; b <= 8; ++b)
        hierarchy.serviceMiss(b * 2, 0);
    const Cycle latency = hierarchy.serviceMiss(0, 0);
    EXPECT_EQ(latency, 35u); // L3 still holds it
}
