/**
 * @file
 * Interval-parallel simulation tests: the driver's --intervals path
 * must agree with the monolithic pass (merged MPKI within 2% of the
 * full-run MPKI on every catalog workload — the acceptance bar of
 * the interval-simulation work), sharded execution must be
 * deterministic across thread counts, runShardedCell must match the
 * driver's own sharding, and `acic_run stat` must reject an empty
 * trace with a clear error and a nonzero exit (spawned through the
 * real CLI binary).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#ifndef _WIN32
#include <sys/wait.h>
#endif

#include "driver/experiment.hh"
#include "sim/runner.hh"
#include "trace/catalog.hh"
#include "trace/io.hh"

using namespace acic;

namespace {

/** Catalog-wide spec at a ctest-friendly length. */
ExperimentSpec
catalogSpec(unsigned intervals)
{
    ExperimentSpec spec;
    spec.workloads = WorkloadCatalog::builtin().resolve("all");
    spec.schemes = parseSchemeList("acic");
    spec.instructions = 600'000;
    spec.threads = 2;
    spec.intervals = intervals;
    return spec;
}

double
relDiff(double a, double b)
{
    if (a == 0.0 && b == 0.0)
        return 0.0;
    const double base = a == 0.0 ? b : a;
    const double d = (b - a) / base;
    return d < 0 ? -d : d;
}

} // namespace

TEST(IntervalDriver, MergedMpkiWithinTwoPercentOnEveryCatalogWorkload)
{
    const auto full = ExperimentDriver(catalogSpec(1)).run();
    const auto merged = ExperimentDriver(catalogSpec(4)).run();
    ASSERT_EQ(full.size(), merged.size());
    const auto workloads = catalogSpec(1).workloads;
    for (std::size_t i = 0; i < full.size(); ++i) {
        const double f = full[i].result.mpki();
        const double m = merged[i].result.mpki();
        EXPECT_LE(relDiff(f, m), 0.02)
            << workloads[full[i].workloadIndex].name()
            << ": full mpki " << f << " vs merged " << m;
        // The merged measured span is the full run's span.
        EXPECT_EQ(merged[i].result.instructions,
                  full[i].result.instructions);
    }
}

TEST(IntervalDriver, ShardedResultsIdenticalAcrossThreadCounts)
{
    ExperimentSpec one = catalogSpec(3);
    one.workloads = {Workloads::byName("web_search")};
    one.instructions = 120'000;
    one.threads = 1;
    ExperimentSpec four = one;
    four.threads = 4;
    const auto a = ExperimentDriver(one).run();
    const auto b = ExperimentDriver(four).run();
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(a[0].result.cycles, b[0].result.cycles);
    EXPECT_EQ(a[0].result.l1iMisses, b[0].result.l1iMisses);
    EXPECT_EQ(a[0].result.orgStats.raw(),
              b[0].result.orgStats.raw());
}

TEST(IntervalDriver, RunShardedCellMatchesDriverSharding)
{
    WorkloadParams params = Workloads::byName("tpcc");
    params.instructions = 150'000;
    const SharedWorkload shared(params);
    const SimResult helper = runShardedCell(
        shared, parseScheme("acic"), 4, 30'000, 2);

    ExperimentSpec spec;
    spec.workloads = {params};
    spec.schemes = parseSchemeList("acic");
    spec.intervals = 4;
    spec.intervalWarmup = 30'000;
    spec.threads = 2;
    const auto cells = ExperimentDriver(spec).run();
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(helper.cycles, cells[0].result.cycles);
    EXPECT_EQ(helper.l1iMisses, cells[0].result.l1iMisses);
    EXPECT_EQ(helper.instructions, cells[0].result.instructions);
}

TEST(IntervalDriver, IntervalsOneUsesLegacyMonolithicPath)
{
    // K = 1 must be bit-identical to the serial SharedWorkload pass
    // (the acceptance criterion that interval support changes
    // nothing unless asked for).
    WorkloadParams params = Workloads::byName("media_streaming");
    params.instructions = 100'000;
    const SharedWorkload shared(params);
    const SimResult serial = shared.run(std::string("acic"));

    ExperimentSpec spec;
    spec.workloads = {params};
    spec.schemes = parseSchemeList("acic");
    spec.intervals = 1;
    spec.threads = 2;
    const auto cells = ExperimentDriver(spec).run();
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(serial.cycles, cells[0].result.cycles);
    EXPECT_EQ(serial.l1iMisses, cells[0].result.l1iMisses);
    EXPECT_EQ(serial.orgStats.raw(),
              cells[0].result.orgStats.raw());
}

#ifndef _WIN32
TEST(StatCli, EmptyTraceFailsWithClearError)
{
    // A zero-record trace is structurally valid on disk, but every
    // percentage `stat` prints would be 0/0; the CLI must refuse it
    // loudly instead of printing a page of zeros (exit 1, message on
    // stderr).
    const std::string path = "acic_test_empty.acictrace";
    {
        TraceWriter writer(path, "empty");
        writer.close();
    }
    TraceFileInfo info;
    ASSERT_TRUE(readTraceHeader(path, info));
    EXPECT_EQ(info.instructions, 0u);

    const std::string err = path + ".stderr";
    const std::string cmd = std::string(ACIC_RUN_BIN) + " stat " +
                            path + " >/dev/null 2>" + err;
    const int status = std::system(cmd.c_str());
    ASSERT_NE(status, -1);
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 1);

    std::string captured;
    if (FILE *f = std::fopen(err.c_str(), "rb")) {
        char buf[512];
        std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
        buf[n] = '\0';
        captured = buf;
        std::fclose(f);
    }
    EXPECT_NE(captured.find("empty trace"), std::string::npos)
        << "stderr was: " << captured;

    std::remove(path.c_str());
    std::remove(err.c_str());
}
#endif
