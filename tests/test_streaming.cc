/**
 * @file
 * Streaming-trace battery (DESIGN.md section 12): the bounded SPSC
 * chunk ring (seeded-schedule property tests: record occupancy
 * bounded by capacity, no drop/dup/reorder under randomized
 * producer/consumer stalls, event-driven stop wakeups, the oversized
 * chunk escape hatch), the framed stream format (round trips bit-for-bit against
 * the file-sourced record sequence; torn frames, garbage prefixes,
 * and record-count mismatches raise the named trace errors with byte
 * offsets), the StreamTee fan-out (cursor equality, bounded backlog
 * under trim, acquireRun pinning), the FileTraceSource truncation
 * contract (satellite of the same failure taxonomy), and full
 * engine-on-stream vs engine-on-file statistics identity.
 */

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "driver/emitters.hh"
#include "sim/engine.hh"
#include "sim/scheme.hh"
#include "trace/errors.hh"
#include "trace/io.hh"
#include "trace/memory.hh"
#include "trace/streaming.hh"
#include "trace/synthetic.hh"

using namespace acic;

namespace fs = std::filesystem;

namespace {

fs::path
tempDir()
{
    static const fs::path dir = [] {
        fs::path d = fs::temp_directory_path() /
                     ("acic_streaming_" +
                      std::to_string(::getpid()));
        fs::create_directories(d);
        return d;
    }();
    return dir;
}

/** Deterministic pseudo-random instruction sequence exercising every
 *  record shape: linked/unlinked pc, sequential/redirecting nextPc,
 *  all branch kinds, large deltas. */
std::vector<TraceInst>
makeInsts(std::size_t n, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<TraceInst> out;
    out.reserve(n);
    Addr prev_next = 0;
    for (std::size_t i = 0; i < n; ++i) {
        TraceInst inst;
        const bool linked = rng() % 4 != 0;
        inst.pc = linked ? prev_next
                         : (rng() % (1u << 20)) * 4 + 0x400000;
        inst.kind = static_cast<BranchKind>(rng() % 5);
        inst.taken = inst.kind != BranchKind::None && rng() % 2;
        const bool sequential = rng() % 3 != 0;
        inst.nextPc = sequential
                          ? inst.pc + TraceInst::kInstBytes
                          : (rng() % (1u << 20)) * 4 + 0x400000;
        prev_next = inst.nextPc;
        out.push_back(inst);
    }
    return out;
}

/** Frame @p insts into a byte string (default frame size unless
 *  given). */
std::string
frameToString(const std::vector<TraceInst> &insts,
              const std::string &name,
              std::uint32_t frame_records = 512)
{
    std::ostringstream bytes(std::ios::binary);
    StreamTraceWriter writer(bytes, name, frame_records);
    for (const TraceInst &inst : insts)
        writer.append(inst);
    writer.finish();
    return bytes.str();
}

std::string
writeBytes(const std::string &bytes, const std::string &file)
{
    const fs::path path = tempDir() / file;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    out.close();
    return path.string();
}

/** Drain a source through next(). */
std::vector<TraceInst>
drain(TraceSource &src)
{
    std::vector<TraceInst> out;
    TraceInst inst;
    while (src.next(inst))
        out.push_back(inst);
    return out;
}

void
expectSame(const std::vector<TraceInst> &a,
           const std::vector<TraceInst> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].pc, b[i].pc) << "record " << i;
        ASSERT_EQ(a[i].nextPc, b[i].nextPc) << "record " << i;
        ASSERT_EQ(a[i].kind, b[i].kind) << "record " << i;
        ASSERT_EQ(a[i].taken, b[i].taken) << "record " << i;
    }
}

} // namespace

// -------------------------------------------------- SpscChunkRing battery

namespace {

/** Build one immutable chunk whose records tag their absolute
 *  position in the sequence. */
std::shared_ptr<const StreamChunk>
makeChunk(std::size_t base, std::size_t n)
{
    auto chunk = std::make_shared<StreamChunk>();
    chunk->data.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        chunk->data[i].pc = base + i;
        chunk->data[i].nextPc = (base + i) * 2;
    }
    return chunk;
}

/** One backpressure schedule: a producer thread pushing chunks of a
 *  tagged sequence with seeded stalls, a consumer popping chunks
 *  with its own seeded stalls. Verifies the full
 *  no-drop/no-dup/no-reorder property and the record-count occupancy
 *  bound (chunks never exceed the capacity here, so the oversized
 *  escape hatch stays cold). */
void
runRingSchedule(std::uint64_t seed, std::size_t capacity,
                std::size_t total, std::size_t max_chunk,
                unsigned producer_stall_us,
                unsigned consumer_stall_us)
{
    SpscChunkRing ring(capacity);
    std::thread producer([&] {
        std::mt19937_64 rng(seed);
        std::size_t sent = 0;
        while (sent < total) {
            std::size_t n = rng() % max_chunk + 1;
            if (n > total - sent)
                n = total - sent;
            ASSERT_TRUE(ring.push(makeChunk(sent, n)));
            sent += n;
            if (producer_stall_us && rng() % 4 == 0)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(rng() %
                                              producer_stall_us));
        }
        ring.closeProducer();
    });

    std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ull);
    std::size_t received = 0;
    while (auto chunk = ring.pop()) {
        ASSERT_FALSE(chunk->data.empty());
        for (std::size_t i = 0; i < chunk->data.size(); ++i) {
            ASSERT_EQ(chunk->data[i].pc, received + i)
                << "dropped/duplicated/reordered record";
            ASSERT_EQ(chunk->data[i].nextPc, (received + i) * 2);
        }
        received += chunk->data.size();
        if (consumer_stall_us && rng() % 4 == 0)
            std::this_thread::sleep_for(std::chrono::microseconds(
                rng() % consumer_stall_us));
    }
    producer.join();
    EXPECT_EQ(received, total);
    EXPECT_LE(ring.maxOccupancy(), ring.capacity());
    EXPECT_GT(ring.maxOccupancy(), 0u);
}

} // namespace

TEST(SpscChunkRing, BalancedSchedulePreservesSequence)
{
    runRingSchedule(1, 256, 20000, 96, 0, 0);
}

TEST(SpscChunkRing, SlowConsumerBackpressure)
{
    // The producer outruns the consumer: pushes must block at the
    // record-count capacity bound, never overwrite.
    runRingSchedule(2, 64, 8000, 48, 0, 40);
}

TEST(SpscChunkRing, SlowProducerStarvation)
{
    // The consumer outruns the producer: pops must block on empty,
    // never fabricate or re-deliver chunks.
    runRingSchedule(3, 64, 8000, 48, 40, 0);
}

TEST(SpscChunkRing, JitterBothSides)
{
    runRingSchedule(4, 32, 6000, 24, 25, 25);
}

TEST(SpscChunkRing, TinyCapacityLockstep)
{
    runRingSchedule(5, 2, 3000, 2, 10, 10);
}

TEST(SpscChunkRing, OversizedChunkAdmittedIntoEmptyRingOnly)
{
    // A chunk larger than the whole capacity must still make
    // progress — but only through an otherwise-empty ring, so the
    // memory bound degrades to one chunk, never capacity + chunk.
    SpscChunkRing ring(4);
    ASSERT_TRUE(ring.push(makeChunk(0, 2)));
    std::atomic<bool> oversized_in{false};
    std::thread producer([&] {
        ASSERT_TRUE(ring.push(makeChunk(2, 10))); // blocks: not empty
        oversized_in.store(true);
        ring.closeProducer();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(oversized_in.load())
        << "oversized chunk entered a non-empty ring";
    auto small = ring.pop();
    ASSERT_TRUE(small);
    EXPECT_EQ(small->data.size(), 2u);
    auto big = ring.pop(); // unblocks the producer
    ASSERT_TRUE(big);
    EXPECT_EQ(big->data.size(), 10u);
    EXPECT_EQ(big->data[0].pc, 2u);
    producer.join();
    EXPECT_TRUE(oversized_in.load());
    EXPECT_FALSE(ring.pop());
    EXPECT_EQ(ring.maxOccupancy(), 10u); // the one-chunk degradation
}

TEST(SpscChunkRing, StopFlagAbortsBothSides)
{
    std::atomic<bool> stop{false};
    SpscChunkRing ring(4, &stop);
    ASSERT_TRUE(ring.push(makeChunk(0, 4))); // fills to capacity
    stop.store(true);
    // Producer: a full ring would block forever; the flag aborts.
    EXPECT_FALSE(ring.push(makeChunk(4, 1)));
    // Consumer: buffered chunks still drain, then null (not a hang).
    auto chunk = ring.pop();
    ASSERT_TRUE(chunk);
    EXPECT_EQ(chunk->data.size(), 4u);
    EXPECT_FALSE(ring.pop());
}

TEST(SpscChunkRing, NotifyStopWakesBlockedConsumer)
{
    // The shutdown relay: a consumer parked on an empty ring (a pure
    // CV sleep — there are no poll ticks to bail it out) must be
    // woken by the flag + notifyStop() pair and see end-of-stream.
    std::atomic<bool> stop{false};
    SpscChunkRing ring(16, &stop);
    std::atomic<bool> woke{false};
    std::thread consumer([&] {
        EXPECT_FALSE(ring.pop());
        woke.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_FALSE(woke.load());
    stop.store(true);
    ring.notifyStop();
    consumer.join();
    EXPECT_TRUE(woke.load());
}

TEST(SpscChunkRing, FailureDrainsBufferedThenThrows)
{
    SpscChunkRing ring(16);
    ASSERT_TRUE(ring.push(makeChunk(7, 3)));
    ring.fail(std::make_exception_ptr(
        TraceFormatError("injected", 99)));
    // The chunks buffered before the failure arrive intact...
    auto chunk = ring.pop();
    ASSERT_TRUE(chunk);
    EXPECT_EQ(chunk->data.size(), 3u);
    EXPECT_EQ(chunk->data[0].pc, 7u);
    // ...and only then does the stored error surface.
    try {
        ring.pop();
        FAIL() << "expected TraceFormatError";
    } catch (const TraceFormatError &e) {
        EXPECT_EQ(e.offset(), 99u);
    }
}

// --------------------------------------------------- stream format battery

TEST(StreamFormat, RoundTripsRandomRecords)
{
    const auto insts = makeInsts(10000, 42);
    const std::string path = writeBytes(
        frameToString(insts, "roundtrip", 333), "roundtrip.acis");
    auto src = StreamingTraceSource::openPath(path, 1024);
    EXPECT_EQ(src->name(), "roundtrip");
    const auto got = drain(*src);
    expectSame(insts, got);
    EXPECT_TRUE(src->sawEndOfStream());
    EXPECT_EQ(src->streamTotal(), insts.size());
    EXPECT_EQ(src->length(), insts.size());
    EXPECT_LE(src->ringMaxOccupancy(), src->ringCapacity());
}

TEST(StreamFormat, StreamedEqualsFileSourced)
{
    // The headline bit-for-bit property: framing a recorded trace
    // and streaming it back yields the identical record sequence the
    // file reader decodes.
    WorkloadParams params = Workloads::datacenter().front();
    params.instructions = 60000;
    SyntheticWorkload synth(params);
    const std::string trace_path =
        (tempDir() / "streamed_eq.acictrace").string();
    recordTrace(synth, trace_path);

    FileTraceSource file(trace_path);
    std::ostringstream bytes(std::ios::binary);
    {
        StreamTraceWriter writer(bytes, file.name(), 4096);
        TraceInst inst;
        while (file.next(inst))
            writer.append(inst);
        writer.finish();
    }
    file.reset();
    const std::string stream_path =
        writeBytes(bytes.str(), "streamed_eq.acis");

    auto streamed = StreamingTraceSource::openPath(stream_path);
    EXPECT_EQ(streamed->name(), file.name());
    expectSame(drain(file), drain(*streamed));
}

TEST(StreamFormat, DecodeBatchMatchesNext)
{
    const auto insts = makeInsts(5000, 7);
    const std::string bytes = frameToString(insts, "batch", 100);
    auto a = StreamingTraceSource::openPath(
        writeBytes(bytes, "batch_a.acis"));
    auto b = StreamingTraceSource::openPath(
        writeBytes(bytes, "batch_b.acis"));
    // Interleave entry points on one source; compare against pure
    // next() on the other.
    std::vector<TraceInst> via_batch;
    InstBatch batch;
    TraceInst single;
    bool use_batch = true;
    for (;;) {
        if (use_batch) {
            if (a->decodeBatch(batch) == 0)
                break;
            for (unsigned i = 0; i < batch.count; ++i)
                via_batch.push_back(batch.get(i));
        } else {
            if (!a->next(single))
                break;
            via_batch.push_back(single);
        }
        use_batch = !use_batch;
    }
    expectSame(drain(*b), via_batch);
}

TEST(StreamFormat, EmptyStreamIsValid)
{
    const std::string path = writeBytes(
        frameToString({}, "empty"), "empty.acis");
    auto src = StreamingTraceSource::openPath(path);
    TraceInst inst;
    EXPECT_FALSE(src->next(inst));
    EXPECT_TRUE(src->sawEndOfStream());
    EXPECT_EQ(src->length(), 0u);
}

TEST(StreamFormat, ResetBeforeConsumptionOnly)
{
    const auto insts = makeInsts(10, 11);
    auto src = StreamingTraceSource::openPath(
        writeBytes(frameToString(insts, "reset"), "reset.acis"));
    src->reset(); // no-op before the first record
    EXPECT_EQ(drain(*src).size(), insts.size());
}

// ------------------------------------------------ malformed-stream battery

namespace {

/** Open truncated/corrupted stream bytes and consume; returns the
 *  caught error message, failing the test when no TraceFormatError
 *  surfaces. Header damage throws from the constructor, frame
 *  damage from the consuming loop — both paths land here. */
std::string
expectStreamError(const std::string &bytes, const std::string &file,
                  bool *was_truncation = nullptr)
{
    const std::string path = writeBytes(bytes, file);
    try {
        auto src = StreamingTraceSource::openPath(path, 512);
        drain(*src);
    } catch (const TraceTruncatedError &e) {
        if (was_truncation)
            *was_truncation = true;
        return e.what();
    } catch (const TraceFormatError &e) {
        if (was_truncation)
            *was_truncation = false;
        return e.what();
    }
    ADD_FAILURE() << file
                  << ": malformed stream consumed without error";
    return "";
}

} // namespace

TEST(StreamErrors, EofWithoutEosFrameIsTruncation)
{
    // Producer death after a complete frame: everything decodes,
    // then the missing EOS frame is reported as truncation.
    std::string bytes = frameToString(makeInsts(600, 1), "t", 512);
    bytes.resize(bytes.size() - StreamFormat::kFrameHeaderBytes);
    bool truncation = false;
    const std::string msg =
        expectStreamError(bytes, "no_eos.acis", &truncation);
    EXPECT_TRUE(truncation) << msg;
    EXPECT_NE(msg.find("end-of-stream"), std::string::npos) << msg;
    EXPECT_NE(msg.find("byte offset"), std::string::npos) << msg;
}

TEST(StreamErrors, TornFrameHeaderIsTruncation)
{
    std::string bytes = frameToString(makeInsts(600, 2), "t", 512);
    // Cut inside the *second* frame's header.
    const std::size_t header_bytes = StreamFormat::kHeaderBytes + 1;
    bytes.resize(header_bytes + StreamFormat::kFrameHeaderBytes + 7);
    bool truncation = false;
    const std::string msg =
        expectStreamError(bytes, "torn_header.acis", &truncation);
    EXPECT_TRUE(truncation) << msg;
}

TEST(StreamErrors, TornFramePayloadIsTruncation)
{
    std::string bytes = frameToString(makeInsts(600, 3), "t", 512);
    // Cut mid-payload of the first frame.
    bytes.resize(StreamFormat::kHeaderBytes + 1 +
                 StreamFormat::kFrameHeaderBytes + 40);
    bool truncation = false;
    const std::string msg =
        expectStreamError(bytes, "torn_payload.acis", &truncation);
    EXPECT_TRUE(truncation) << msg;
    EXPECT_NE(msg.find("expected"), std::string::npos) << msg;
}

TEST(StreamErrors, GarbagePrefixIsFormatError)
{
    std::string bytes = frameToString(makeInsts(10, 4), "t");
    bytes[0] ^= 0x5a; // corrupt the stream magic
    bool truncation = true;
    const std::string msg =
        expectStreamError(bytes, "bad_magic.acis", &truncation);
    EXPECT_FALSE(truncation) << msg;
    EXPECT_NE(msg.find("magic"), std::string::npos) << msg;
}

TEST(StreamErrors, BadVersionIsFormatError)
{
    std::string bytes = frameToString(makeInsts(10, 5), "t");
    bytes[4] = 9; // version field
    const std::string msg =
        expectStreamError(bytes, "bad_version.acis");
    EXPECT_NE(msg.find("version"), std::string::npos) << msg;
}

TEST(StreamErrors, BadFrameMagicIsFormatError)
{
    std::string bytes = frameToString(makeInsts(10, 6), "t");
    bytes[StreamFormat::kHeaderBytes + 1] ^= 0xff; // frame magic
    const std::string msg =
        expectStreamError(bytes, "bad_frame.acis");
    EXPECT_NE(msg.find("frame magic"), std::string::npos) << msg;
}

TEST(StreamErrors, EosCountMismatchIsFormatError)
{
    std::string bytes = frameToString(makeInsts(100, 7), "t", 512);
    // The EOS total is the trailing u64; perturb it.
    bytes[bytes.size() - 8] ^= 0x01;
    const std::string msg =
        expectStreamError(bytes, "eos_mismatch.acis");
    EXPECT_NE(msg.find("count mismatch"), std::string::npos) << msg;
}

TEST(StreamErrors, FuzzTruncationAtEveryRegionRaisesNamedError)
{
    // Sweep cuts across the whole stream: every prefix length must
    // produce a *named* trace error (or decode cleanly only when the
    // cut lands exactly at end-of-stream), never hang, crash, or
    // silently deliver a short sequence.
    const std::string bytes =
        frameToString(makeInsts(300, 8), "fuzz", 64);
    std::mt19937_64 rng(99);
    for (int i = 0; i < 40; ++i) {
        const std::size_t cut = rng() % (bytes.size() - 1);
        expectStreamError(bytes.substr(0, cut),
                          "fuzz_" + std::to_string(i) + ".acis");
    }
}

// --------------------------------------- FileTraceSource error satellites

TEST(TraceFileErrors, TruncatedFileRaisesNamedErrorFromNext)
{
    const auto insts = makeInsts(4000, 21);
    const std::string path =
        (tempDir() / "trunc_next.acictrace").string();
    {
        TraceWriter writer(path, "trunc", 0);
        for (const TraceInst &inst : insts)
            writer.append(inst);
        writer.close();
    }
    // Chop the record payload (header is 20 + 5 name bytes).
    fs::resize_file(path, fs::file_size(path) / 2);
    FileTraceSource src(path);
    try {
        drain(src);
        FAIL() << "expected TraceTruncatedError";
    } catch (const TraceTruncatedError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find(path), std::string::npos) << msg;
        EXPECT_NE(msg.find("byte offset"), std::string::npos) << msg;
        EXPECT_GT(e.offset(), 0u);
        EXPECT_EQ(e.expectedBytes(), 1u);
    }
}

TEST(TraceFileErrors, TruncatedFileRaisesNamedErrorFromBatch)
{
    const auto insts = makeInsts(4000, 22);
    const std::string path =
        (tempDir() / "trunc_batch.acictrace").string();
    {
        TraceWriter writer(path, "trunc", 0);
        for (const TraceInst &inst : insts)
            writer.append(inst);
        writer.close();
    }
    fs::resize_file(path, fs::file_size(path) / 2);
    FileTraceSource src(path);
    InstBatch batch;
    EXPECT_THROW(
        {
            while (src.decodeBatch(batch) > 0) {
            }
        },
        TraceTruncatedError);
}

TEST(TraceFileErrors, CorruptKindRaisesFormatErrorWithOffset)
{
    const std::string path =
        (tempDir() / "bad_kind.acictrace").string();
    {
        TraceWriter writer(path, "k", 0);
        TraceInst inst;
        inst.pc = 0x1000;
        inst.nextPc = inst.pc + 4;
        writer.append(inst);
        writer.close();
    }
    // Payload starts at 20 + 1 name byte; the single record is one
    // tag byte. Kind 7 is out of range (BranchKind tops out at 4).
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(21);
    const char bad = 0x07;
    f.write(&bad, 1);
    f.close();
    FileTraceSource src(path);
    try {
        drain(src);
        FAIL() << "expected TraceFormatError";
    } catch (const TraceFormatError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("branch kind"), std::string::npos) << msg;
        EXPECT_NE(msg.find("offset 21"), std::string::npos) << msg;
    }
}

// -------------------------------------------------------- StreamTee battery

TEST(StreamTee, CursorsSeeIdenticalSequences)
{
    const auto insts = makeInsts(20000, 31);
    auto image =
        std::make_shared<std::vector<TraceInst>>(insts);
    MemoryTraceSource upstream(image, "tee");
    StreamTee tee(upstream, 3, 512);

    // Cursor 0 drains via next(), cursor 1 via decodeBatch, cursor 2
    // via acquireRun — all three must deliver the upstream sequence.
    std::vector<TraceInst> a = drain(tee.cursor(0));

    std::vector<TraceInst> b;
    InstBatch batch;
    while (tee.cursor(1).decodeBatch(batch) > 0)
        for (unsigned i = 0; i < batch.count; ++i)
            b.push_back(batch.get(i));

    std::vector<TraceInst> c;
    for (;;) {
        std::uint64_t n = 0;
        const TraceInst *run = tee.cursor(2).acquireRun(1000, n);
        if (!run || n == 0)
            break;
        c.insert(c.end(), run, run + n);
    }

    expectSame(insts, a);
    expectSame(insts, b);
    expectSame(insts, c);
}

TEST(StreamTee, LockstepTrimBoundsBacklog)
{
    const auto insts = makeInsts(50000, 32);
    auto image =
        std::make_shared<std::vector<TraceInst>>(insts);
    MemoryTraceSource upstream(image, "tee");
    const std::size_t chunk = 256;
    StreamTee tee(upstream, 2, chunk);

    TraceInst inst;
    std::uint64_t consumed = 0;
    std::uint64_t max_backlog = 0;
    while (tee.cursor(0).next(inst)) {
        ASSERT_TRUE(tee.cursor(1).next(inst));
        ++consumed;
        if (consumed % 64 == 0) {
            tee.trim();
            max_backlog = std::max(
                max_backlog,
                tee.bufferedEnd() - tee.bufferedStart());
        }
    }
    EXPECT_EQ(consumed, insts.size());
    // Lockstep + trim: the live window stays O(chunk + one decode
    // batch), nowhere near the stream length.
    EXPECT_LE(max_backlog, 2 * chunk + InstBatch::kCapacity);
}

TEST(StreamTee, AcquireRunSurvivesTrim)
{
    const auto insts = makeInsts(4000, 33);
    auto image =
        std::make_shared<std::vector<TraceInst>>(insts);
    MemoryTraceSource upstream(image, "tee");
    StreamTee tee(upstream, 1, 128);

    std::uint64_t n = 0;
    const TraceInst *run = tee.cursor(0).acquireRun(64, n);
    ASSERT_NE(run, nullptr);
    ASSERT_GT(n, 0u);
    const TraceInst first = run[0];
    // Consume far past the run's chunk and trim; the pinned chunk
    // must keep the acquired pointer valid.
    TraceInst inst;
    for (int i = 0; i < 2000; ++i)
        ASSERT_TRUE(tee.cursor(0).next(inst));
    tee.trim();
    EXPECT_EQ(run[0].pc, first.pc);
    EXPECT_EQ(run[0].nextPc, first.nextPc);
}

TEST(StreamTee, LaggingCursorHoldsBacklog)
{
    const auto insts = makeInsts(10000, 34);
    auto image =
        std::make_shared<std::vector<TraceInst>>(insts);
    MemoryTraceSource upstream(image, "tee");
    StreamTee tee(upstream, 2, 256);

    // Cursor 0 races ahead; cursor 1 stays at zero, so trim() must
    // retain everything.
    drain(tee.cursor(0));
    tee.trim();
    EXPECT_EQ(tee.bufferedStart(), 0u);
    expectSame(insts, drain(tee.cursor(1)));
    tee.trim();
    EXPECT_EQ(tee.bufferedStart(), tee.bufferedEnd());
}

TEST(StreamTee, AdoptsStreamChunksZeroCopy)
{
    // The zero-copy fast path: a tee over a ChunkedTraceSource
    // adopts the reader thread's frame-shaped chunks as-is, so a
    // cursor's acquireRun() hands back whole frames — 512 records
    // per run here, not the tee's own (much larger) staging size,
    // and never an InstBatch-sized sliver.
    const std::size_t frame = 512;
    const auto insts = makeInsts(4 * frame + 100, 51);
    const std::string path = writeBytes(
        frameToString(insts, "zcopy", frame), "zcopy.acis");
    auto src = StreamingTraceSource::openPath(path, 4096);
    StreamTee tee(*src, 1);

    std::vector<TraceInst> got;
    std::vector<std::uint64_t> run_sizes;
    for (;;) {
        std::uint64_t n = 0;
        const TraceInst *run =
            tee.cursor(0).acquireRun(~0ull, n);
        if (!run || n == 0)
            break;
        run_sizes.push_back(n);
        got.insert(got.end(), run, run + n);
    }
    expectSame(insts, got);
    ASSERT_EQ(run_sizes.size(), 5u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(run_sizes[i], frame)
            << "run " << i << " is not frame-shaped: the tee copied "
            << "instead of adopting";
    EXPECT_EQ(run_sizes[4], 100u);
}

TEST(StreamTee, ConcurrentCursorsDrainIdentically)
{
    // The serve parallel-round shape: N cursors driven from N
    // threads over one live streaming source, each through a
    // different supply API, with trim() running concurrently from a
    // fifth thread — every cursor must deliver the full sequence.
    const auto insts = makeInsts(40000, 52);
    const std::string path = writeBytes(
        frameToString(insts, "mt", 1024), "mt_cursors.acis");
    auto src = StreamingTraceSource::openPath(path, 8192);
    StreamTee tee(*src, 4);

    std::vector<std::vector<TraceInst>> got(4);
    std::atomic<unsigned> done{0};
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < 4; ++c) {
        threads.emplace_back([&, c] {
            StreamTee::Cursor &cur = tee.cursor(c);
            std::vector<TraceInst> &out = got[c];
            out.reserve(insts.size());
            if (c == 0) {
                TraceInst inst;
                while (cur.next(inst))
                    out.push_back(inst);
            } else if (c == 1) {
                InstBatch batch;
                while (cur.decodeBatch(batch) > 0)
                    for (unsigned i = 0; i < batch.count; ++i)
                        out.push_back(batch.get(i));
            } else if (c == 2) {
                for (;;) {
                    std::uint64_t n = 0;
                    const TraceInst *run = cur.acquireRun(777, n);
                    if (!run || n == 0)
                        break;
                    out.insert(out.end(), run, run + n);
                }
            } else {
                // Mixed entry points, alternating per call.
                InstBatch batch;
                TraceInst inst;
                bool use_batch = true;
                for (;;) {
                    if (use_batch) {
                        if (cur.decodeBatch(batch) == 0)
                            break;
                        for (unsigned i = 0; i < batch.count; ++i)
                            out.push_back(batch.get(i));
                    } else {
                        if (!cur.next(inst))
                            break;
                        out.push_back(inst);
                    }
                    use_batch = !use_batch;
                }
            }
            done.fetch_add(1);
        });
    }
    while (done.load() < 4) {
        tee.trim();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (std::thread &t : threads)
        t.join();
    tee.trim();
    for (unsigned c = 0; c < 4; ++c)
        expectSame(insts, got[c]);
    EXPECT_EQ(tee.bufferedStart(), tee.bufferedEnd());
}

// ------------------------------------------- engine-on-stream equivalence

TEST(StreamingEngine, StreamAndFileRunsAreStatIdentical)
{
    // The acceptance property behind `acic_run serve`: one engine
    // driven through the streaming source + tee must finish with the
    // byte-identical statistics of the same engine on the recorded
    // file (no oracle on either side — a single-pass stream cannot
    // build one).
    WorkloadParams params = Workloads::datacenter().front();
    params.instructions = 120000;
    SyntheticWorkload synth(params);
    const std::string trace_path =
        (tempDir() / "engine_eq.acictrace").string();
    recordTrace(synth, trace_path);

    const SimConfig config;
    const std::uint64_t total = 120000;
    const std::uint64_t warm = total / 10;

    const auto run_file = [&](const char *scheme) {
        FileTraceSource file(trace_path);
        auto org = makeScheme(parseScheme(scheme), config);
        SimEngine engine(config, file, *org, nullptr);
        engine.warmUp(warm);
        engine.measure(total - warm);
        std::ostringstream dump;
        writeGoldenDump(dump, engine.finish());
        return dump.str();
    };
    const auto run_stream = [&](const char *scheme) {
        FileTraceSource file(trace_path);
        std::ostringstream bytes(std::ios::binary);
        {
            StreamTraceWriter writer(bytes, file.name(), 1024);
            TraceInst inst;
            while (file.next(inst))
                writer.append(inst);
            writer.finish();
        }
        auto streamed = StreamingTraceSource::openPath(
            writeBytes(bytes.str(), "engine_eq.acis"), 4096);
        StreamTee tee(*streamed, 1);
        auto org = makeScheme(parseScheme(scheme), config);
        SimEngine engine(config, tee.cursor(0), *org, nullptr);
        engine.warmUp(warm);
        // Chunked measure, as the serve loop steps it.
        std::uint64_t target = warm;
        while (target < total) {
            const std::uint64_t step =
                std::min<std::uint64_t>(7000, total - target);
            engine.measure(step);
            target += step;
            tee.trim();
        }
        std::ostringstream dump;
        writeGoldenDump(dump, engine.finish());
        return dump.str();
    };

    for (const char *scheme : {"lru", "acic"}) {
        const std::string file_dump = run_file(scheme);
        EXPECT_EQ(file_dump, run_stream(scheme)) << scheme;
        EXPECT_NE(file_dump.find("instructions 108000"),
                  std::string::npos);
    }
}

