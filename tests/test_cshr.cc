/**
 * @file
 * Tests of the Comparison Status Holding Registers: resolution
 * directions, multiple contender matches, set mapping by i-cache set
 * MSBs, LRU eviction with benefit-of-the-doubt, partial tags, the
 * Fig. 6 lifetime profiler, and Table I storage.
 */

#include <gtest/gtest.h>

#include "core/cshr.hh"

using namespace acic;

namespace {

/** Two blocks in the same i-cache set with different tags. */
constexpr BlockAddr kVictim = 5 + 64 * 3;
constexpr BlockAddr kContender = 5 + 64 * 9;
constexpr std::uint32_t kSet = 5;

} // namespace

TEST(Cshr, VictimFetchResolvesWon)
{
    Cshr cshr;
    cshr.insert(kVictim, kContender, kSet);
    const auto res = cshr.search(kVictim, kSet);
    ASSERT_EQ(res.size(), 1u);
    EXPECT_TRUE(res[0].victimWon);
    EXPECT_FALSE(res[0].forced);
    EXPECT_EQ(res[0].victimTag, cshr.partialTag(kVictim));
    EXPECT_EQ(cshr.occupancy(), 0u);
}

TEST(Cshr, ContenderFetchResolvesLost)
{
    Cshr cshr;
    cshr.insert(kVictim, kContender, kSet);
    const auto res = cshr.search(kContender, kSet);
    ASSERT_EQ(res.size(), 1u);
    EXPECT_FALSE(res[0].victimWon);
    EXPECT_EQ(res[0].victimTag, cshr.partialTag(kVictim));
}

TEST(Cshr, ResolutionConsumesEntry)
{
    Cshr cshr;
    cshr.insert(kVictim, kContender, kSet);
    cshr.search(kVictim, kSet);
    EXPECT_TRUE(cshr.search(kVictim, kSet).empty());
    EXPECT_TRUE(cshr.search(kContender, kSet).empty());
}

TEST(Cshr, ContenderCanMatchMultipleEntries)
{
    Cshr cshr;
    const BlockAddr v2 = 5 + 64 * 17;
    cshr.insert(kVictim, kContender, kSet);
    cshr.insert(v2, kContender, kSet);
    const auto res = cshr.search(kContender, kSet);
    EXPECT_EQ(res.size(), 2u);
    for (const auto &r : res)
        EXPECT_FALSE(r.victimWon);
}

TEST(Cshr, UnrelatedFetchResolvesNothing)
{
    Cshr cshr;
    cshr.insert(kVictim, kContender, kSet);
    EXPECT_TRUE(cshr.search(5 + 64 * 123, kSet).empty());
    EXPECT_EQ(cshr.occupancy(), 1u);
}

TEST(Cshr, DifferentSetGroupDoesNotMatch)
{
    Cshr cshr; // 8 sets keyed by the 3 MSBs of a 6-bit set index
    cshr.insert(kVictim, kContender, kSet); // set 5 -> group 0
    // Same tags searched under set 60 (group 7) find nothing.
    EXPECT_TRUE(cshr.search(kVictim, 60).empty());
    EXPECT_EQ(cshr.occupancy(), 1u);
}

TEST(Cshr, LruEvictionForcesVictimFavour)
{
    CshrConfig config;
    config.entries = 8;
    config.sets = 1;
    Cshr cshr(config);
    for (std::uint32_t i = 0; i < 8; ++i)
        EXPECT_TRUE(cshr.insert(64ull * (i + 1), 64ull * 100, 0)
                        .empty());
    const auto forced = cshr.insert(64ull * 50, 64ull * 100, 0);
    ASSERT_EQ(forced.size(), 1u);
    EXPECT_TRUE(forced[0].victimWon);
    EXPECT_TRUE(forced[0].forced);
    EXPECT_EQ(forced[0].victimTag, cshr.partialTag(64));
    EXPECT_EQ(cshr.forcedCount(), 1u);
}

TEST(Cshr, OccupancyAndCounters)
{
    Cshr cshr;
    cshr.insert(kVictim, kContender, kSet);
    EXPECT_EQ(cshr.occupancy(), 1u);
    cshr.search(kVictim, kSet);
    EXPECT_EQ(cshr.resolvedCount(), 1u);
    EXPECT_EQ(cshr.resolvedWonCount(), 1u);
    EXPECT_EQ(cshr.resolvedLostCount(), 0u);
}

TEST(Cshr, PartialTagIgnoresSetBits)
{
    Cshr cshr;
    // Same tag bits, different set bits -> same partial tag.
    EXPECT_EQ(cshr.partialTag(64 * 7 + 1), cshr.partialTag(64 * 7 + 9));
    // Different tag bits -> (almost surely) different partial tag.
    EXPECT_NE(cshr.partialTag(64 * 7), cshr.partialTag(64 * 8));
}

TEST(Cshr, StorageMatchesTableI)
{
    const Cshr cshr;
    // 256 x (2x12 + 1 + 5) bits = 0.9375 KB.
    EXPECT_DOUBLE_EQ(static_cast<double>(cshr.storageBits()) / 8.0 /
                         1024.0,
                     0.9375);
}

TEST(CshrProfiler, CountsInsertionsUntilResolution)
{
    CshrLifetimeProfiler profiler;
    profiler.onInsert(100, 200);
    // 10 unrelated insertions before the victim returns.
    for (BlockAddr b = 0; b < 10; ++b)
        profiler.onInsert(1000 + b, 2000 + b);
    profiler.onFetch(100);
    profiler.finalize();
    const Histogram &hist = profiler.distribution();
    EXPECT_EQ(hist.count(0), 1u); // resolved within 0-50 insertions
}

TEST(CshrProfiler, UnresolvedLandsInOverflow)
{
    CshrLifetimeProfiler profiler;
    profiler.onInsert(100, 200);
    profiler.finalize();
    const Histogram &hist = profiler.distribution();
    EXPECT_EQ(hist.count(hist.buckets() - 1), 1u);
}

TEST(CshrProfiler, ContenderFetchAlsoResolves)
{
    CshrLifetimeProfiler profiler;
    profiler.onInsert(100, 200);
    profiler.onFetch(200);
    profiler.finalize();
    EXPECT_EQ(profiler.distribution().count(0), 1u);
}
