/**
 * @file
 * Tests of the concrete L1i organizations behind IcacheOrg:
 * PlainIcache with bypass policies and victim caches, the VVC
 * organization wrapper, replacement-accuracy instrumentation, and
 * cross-organization invariants (fill/contains coherence).
 */

#include <gtest/gtest.h>

#include "bypass/obm.hh"
#include "cache/lru.hh"
#include "cache/opt.hh"
#include "common/rng.hh"
#include "sim/organizations.hh"

using namespace acic;

namespace {

CacheAccess
access(BlockAddr blk, Addr pc = 0x8000,
       std::uint64_t next_use = kNeverAgain)
{
    CacheAccess a;
    a.blk = blk;
    a.pc = pc;
    a.nextUse = next_use;
    return a;
}

/** Bypass policy that always bypasses (test double). */
class AlwaysBypass : public BypassPolicy
{
  public:
    bool shouldBypass(const CacheAccess &, SetAssocCache &) override
    {
        return true;
    }
    std::string name() const override { return "always-bypass"; }
};

} // namespace

TEST(PlainIcache, FillThenHit)
{
    PlainIcache org(4, 2, std::make_unique<LruPolicy>(), "t");
    EXPECT_FALSE(org.access(access(1)));
    org.fill(access(1));
    EXPECT_TRUE(org.access(access(1)));
    EXPECT_TRUE(org.contains(1));
    EXPECT_EQ(org.stats().get("plain.hit"), 1u);
}

TEST(PlainIcache, BypassOnlyAppliesToFullSets)
{
    PlainIcache org(4, 2, std::make_unique<LruPolicy>(), "t",
                    std::make_unique<AlwaysBypass>());
    // Cold set: fills land even under an always-bypass policy.
    org.fill(access(0));
    EXPECT_TRUE(org.contains(0));
    org.fill(access(4));
    EXPECT_TRUE(org.contains(4));
    // Full set: the bypass policy now drops the fill.
    org.fill(access(8));
    EXPECT_FALSE(org.contains(8));
    EXPECT_EQ(org.stats().get("plain.bypassed"), 1u);
}

TEST(PlainIcache, VictimCacheCatchesEvictions)
{
    PlainIcache org(4, 2, std::make_unique<LruPolicy>(), "t",
                    nullptr,
                    std::make_unique<VictimCache>(8, 8));
    org.fill(access(0));
    org.fill(access(4));
    org.fill(access(8)); // evicts 0 into the VC
    EXPECT_FALSE(org.access(access(99)));
    EXPECT_TRUE(org.contains(0)); // via the VC
    // A demand access to 0 swaps it back into the L1i.
    EXPECT_TRUE(org.access(access(0)));
    EXPECT_EQ(org.stats().get("plain.vc_hit"), 1u);
    EXPECT_TRUE(org.cache().probe(0));
}

TEST(PlainIcache, VcSwapSendsDisplacedLineToVc)
{
    PlainIcache org(4, 2, std::make_unique<LruPolicy>(), "t",
                    nullptr,
                    std::make_unique<VictimCache>(8, 8));
    org.fill(access(0));
    org.fill(access(4));
    org.fill(access(8)); // 0 -> VC
    org.access(access(0)); // swap back; displaced block -> VC
    // All three blocks must still be reachable somewhere.
    EXPECT_TRUE(org.contains(0));
    EXPECT_TRUE(org.contains(4));
    EXPECT_TRUE(org.contains(8));
}

TEST(PlainIcache, ReplacementAccuracyInstrumentation)
{
    PlainIcache org(4, 2, std::make_unique<LruPolicy>(), "t");
    // Fill a set with oracle annotations, then force an eviction.
    org.fill(access(0, 0x8000, 100));
    org.fill(access(4, 0x8000, 200));
    org.fill(access(8, 0x8000, 50));
    EXPECT_EQ(org.stats().get("plain.evictions_judged"), 1u);
    // LRU evicts block 0 (oldest); OPT would evict block 4 (farthest
    // next use): mismatch.
    EXPECT_EQ(org.stats().get("plain.evictions_match_opt"), 0u);
}

TEST(PlainIcache, StorageOverheadForLargerGeometries)
{
    PlainIcache base(64, 8, std::make_unique<LruPolicy>(), "b");
    PlainIcache bigger(64, 9, std::make_unique<LruPolicy>(), "36");
    EXPECT_EQ(base.storageOverheadBits(), 0u);
    EXPECT_GT(bigger.storageOverheadBits(), 0u);
}

TEST(PlainIcache, ObmIntegrationRuns)
{
    PlainIcache org(8, 2, std::make_unique<LruPolicy>(), "t",
                    std::make_unique<ObmBypass>());
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        CacheAccess a = access(rng.nextBelow(64));
        if (!org.access(a))
            org.fill(a);
    }
    // Cache stays bounded and functional.
    EXPECT_LE(org.cache().validLines(), 16u);
}

TEST(VvcOrg, AccessAndFillCoherent)
{
    VvcOrg org(8, 2);
    Rng rng(21);
    for (int i = 0; i < 20000; ++i) {
        const BlockAddr blk = rng.nextBelow(64);
        CacheAccess a = access(blk);
        const bool hit = org.access(a);
        if (!hit)
            org.fill(a);
        // fill() must make the block visible.
        ASSERT_TRUE(org.contains(blk));
    }
    EXPECT_GT(org.vvc().stats().get("vvc.victim_parked"), 0u);
}

TEST(VvcOrg, ReportsTableIvStorage)
{
    VvcOrg org(64, 8);
    EXPECT_NEAR(static_cast<double>(org.storageOverheadBits()) / 8.0 /
                    1024.0,
                9.06, 1.0);
}

class OrgInvariant : public ::testing::TestWithParam<int>
{
  public:
    std::unique_ptr<IcacheOrg>
    make() const
    {
        switch (GetParam()) {
          case 0:
            return std::make_unique<PlainIcache>(
                8, 2, std::make_unique<LruPolicy>(), "lru");
          case 1:
            return std::make_unique<PlainIcache>(
                8, 2, std::make_unique<OptPolicy>(), "opt");
          case 2:
            return std::make_unique<VvcOrg>(8, 2);
          case 3:
            return std::make_unique<PlainIcache>(
                8, 2, std::make_unique<LruPolicy>(), "vc", nullptr,
                std::make_unique<VictimCache>(8, 8));
          default:
            return nullptr;
        }
    }
};

TEST_P(OrgInvariant, HitAfterFillUntilEvicted)
{
    auto org = make();
    Rng rng(31);
    std::uint64_t hits = 0, accesses = 0;
    for (int i = 0; i < 30000; ++i) {
        const BlockAddr blk = rng.nextBelow(48);
        CacheAccess a = access(blk, 0x8000 + 4 * blk,
                               i + rng.nextBelow(100));
        ++accesses;
        if (org->access(a)) {
            ++hits;
        } else {
            org->fill(a);
            ASSERT_TRUE(org->contains(blk));
        }
    }
    // Some locality must be captured by every organization.
    EXPECT_GT(static_cast<double>(hits) /
                  static_cast<double>(accesses),
              0.1);
}

INSTANTIATE_TEST_SUITE_P(Orgs, OrgInvariant,
                         ::testing::Values(0, 1, 2, 3));
