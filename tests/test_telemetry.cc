/**
 * @file
 * Telemetry-layer tests: the JSONL sink (schema validity of every
 * emitted line, span nesting depths, per-thread buffer interleaving),
 * the engine heartbeat cadence, the common/json parser the report
 * command is built on, writeTelemetryReport() itself, and the
 * non-negotiable invariant that enabling telemetry leaves simulation
 * results byte-identical.
 *
 * Telemetry is a process-wide facility, so every test that opens the
 * sink closes it before returning (TelemetrySession below) — leaking
 * an enabled sink would bleed spans into unrelated tests.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/telemetry.hh"
#include "driver/emitters.hh"
#include "driver/report.hh"
#include "sim/runner.hh"
#include "trace/workload_params.hh"

using namespace acic;

namespace {

/** RAII sink-to-stringstream session; restores global state. */
class TelemetrySession
{
  public:
    TelemetrySession() { Telemetry::openStream(out_); }
    ~TelemetrySession()
    {
        Telemetry::close();
        Telemetry::setHeartbeatInterval(1'000'000);
    }

    /** close() and return the drained JSONL text. */
    std::string finish()
    {
        Telemetry::close();
        return out_.str();
    }

  private:
    std::ostringstream out_;
};

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);
    return lines;
}

/** Parse every line; fail the test on the first invalid one. */
std::vector<json::Value>
parseAll(const std::vector<std::string> &lines)
{
    std::vector<json::Value> events;
    for (const std::string &line : lines) {
        json::Value ev;
        std::string err;
        EXPECT_TRUE(json::parse(line, ev, &err))
            << "invalid JSONL line: " << line << " (" << err << ")";
        EXPECT_TRUE(ev.isObject()) << line;
        events.push_back(std::move(ev));
    }
    return events;
}

/** The first datacenter preset, truncated for test speed. */
WorkloadParams
smallWorkload(std::uint64_t instructions)
{
    WorkloadParams params = Workloads::datacenter().front();
    params.instructions = instructions;
    return params;
}

} // namespace

TEST(Telemetry, DisabledByDefaultAndScopesAreDead)
{
    ASSERT_FALSE(Telemetry::enabled());
    TelemetryScope span("should.not.appear");
    EXPECT_FALSE(span.live());
    // No sink: these must be safe no-ops, not crashes.
    Telemetry::counter("noop", {{"k", std::uint64_t{1}}});
    Telemetry::gauge("noop", 1.0);
}

TEST(Telemetry, MetaLineFirstAndSchemaValid)
{
    TelemetrySession session;
    {
        TelemetryScope span("outer");
        span.attr("workload", std::string("w \"quoted\""));
        span.attr("count", std::uint64_t{42});
        span.attr("ratio", 0.25);
        TelemetryScope inner("inner");
    }
    Telemetry::counter("ticks", {{"n", std::uint64_t{7}}});
    Telemetry::gauge("depth", 3.5);

    const auto lines = splitLines(session.finish());
    ASSERT_GE(lines.size(), 4u);
    const auto events = parseAll(lines);

    EXPECT_EQ(events.front().text("ev"), "meta");
    EXPECT_EQ(events.front().num("version"), 1.0);

    std::set<std::string> kinds;
    for (const json::Value &ev : events) {
        const std::string kind = ev.text("ev");
        kinds.insert(kind);
        if (kind == "meta")
            continue;
        EXPECT_FALSE(ev.text("name").empty());
        EXPECT_NE(ev.find("t_us"), nullptr);
        EXPECT_NE(ev.find("tid"), nullptr);
        if (kind == "span")
            EXPECT_NE(ev.find("dur_us"), nullptr);
        if (kind == "gauge")
            EXPECT_DOUBLE_EQ(ev.num("value"), 3.5);
    }
    EXPECT_EQ(kinds,
              (std::set<std::string>{"meta", "span", "count",
                                     "gauge"}));

    // The escaped attribute must round-trip through the parser.
    for (const json::Value &ev : events) {
        if (ev.text("name") != "outer")
            continue;
        const json::Value *attrs = ev.find("attrs");
        ASSERT_NE(attrs, nullptr);
        EXPECT_EQ(attrs->text("workload"), "w \"quoted\"");
        EXPECT_EQ(attrs->num("count"), 42.0);
        EXPECT_DOUBLE_EQ(attrs->num("ratio"), 0.25);
    }
}

TEST(Telemetry, SpanNestingDepths)
{
    TelemetrySession session;
    {
        TelemetryScope a("a");
        {
            TelemetryScope b("b");
            TelemetryScope c("c");
        }
        TelemetryScope d("d");
    }
    const auto events = parseAll(splitLines(session.finish()));
    int found = 0;
    for (const json::Value &ev : events) {
        if (ev.text("ev") != "span")
            continue;
        ++found;
        const std::string name = ev.text("name");
        const double depth = ev.num("depth", -1.0);
        if (name == "a")
            EXPECT_EQ(depth, 0.0);
        else if (name == "b" || name == "d")
            EXPECT_EQ(depth, 1.0);
        else if (name == "c")
            EXPECT_EQ(depth, 2.0);
    }
    EXPECT_EQ(found, 4);
}

TEST(Telemetry, ThreadsInterleaveWithDistinctTids)
{
    constexpr int kThreads = 4;
    constexpr int kSpansPerThread = 200;
    TelemetrySession session;
    {
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t)
            threads.emplace_back([] {
                for (int i = 0; i < kSpansPerThread; ++i) {
                    TelemetryScope span("worker.span");
                    Telemetry::gauge("worker.i",
                                     static_cast<double>(i));
                }
            });
        for (std::thread &t : threads)
            t.join();
    }
    const auto events = parseAll(splitLines(session.finish()));

    std::set<double> tids;
    int spans = 0;
    for (const json::Value &ev : events) {
        if (ev.text("ev") != "span")
            continue;
        ++spans;
        tids.insert(ev.num("tid", -1.0));
    }
    // Every span from every thread survived the interleaved drain...
    EXPECT_EQ(spans, kThreads * kSpansPerThread);
    // ...and buffers kept per-thread identity (one tid per thread;
    // the main thread emitted no span here).
    EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST(Telemetry, EngineHeartbeatsFollowCadence)
{
    Telemetry::setHeartbeatInterval(20'000);
    TelemetrySession session;
    SharedWorkload workload(smallWorkload(100'000));
    (void)workload.run(std::string("lru"));

    const auto events = parseAll(splitLines(session.finish()));
    int heartbeats = 0;
    for (const json::Value &ev : events) {
        if (ev.text("ev") != "count" ||
            ev.text("name") != "engine.heartbeat")
            continue;
        ++heartbeats;
        const json::Value *attrs = ev.find("attrs");
        ASSERT_NE(attrs, nullptr);
        EXPECT_GT(attrs->num("retired"), 0.0);
        EXPECT_GT(attrs->num("window_insts"), 0.0);
        EXPECT_GE(attrs->num("window_mpki"), 0.0);
        EXPECT_GT(attrs->num("window_ipc"), 0.0);
        EXPECT_GT(attrs->num("minst_per_s"), 0.0);
    }
    // 100k retired at a 20k cadence: 5 beats, give or take the
    // boundary (the engine checks after each retire bundle).
    EXPECT_GE(heartbeats, 4);
    EXPECT_LE(heartbeats, 6);

    // Phase spans from the same run must be present too.
    std::set<std::string> names;
    for (const json::Value &ev : events)
        if (ev.text("ev") == "span")
            names.insert(ev.text("name"));
    EXPECT_TRUE(names.count("engine.measure"));
    EXPECT_TRUE(names.count("engine.warmUp"));
}

TEST(Telemetry, ResultsAreByteIdenticalWithTelemetryOn)
{
    const WorkloadParams params = smallWorkload(60'000);
    SharedWorkload workload(params);

    const auto dump = [&](const char *spec) {
        std::ostringstream out;
        writeGoldenDump(out, workload.run(std::string(spec)));
        return out.str();
    };

    ASSERT_FALSE(Telemetry::enabled());
    const std::string off_lru = dump("lru");
    const std::string off_acic = dump("acic");
    std::string on_lru, on_acic;
    {
        Telemetry::setHeartbeatInterval(10'000);
        TelemetrySession session;
        on_lru = dump("lru");
        on_acic = dump("acic");
        // The sink must actually have been exercised, or this test
        // proves nothing.
        EXPECT_NE(session.finish().find("engine.heartbeat"),
                  std::string::npos);
    }
    EXPECT_EQ(off_lru, on_lru);
    EXPECT_EQ(off_acic, on_acic);
}

TEST(JsonParser, ParsesScalarsContainersAndEscapes)
{
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(
        R"({"s":"a\"bé","n":-1.5e2,"t":true,"f":false,)"
        R"("z":null,"arr":[1,2,3],"obj":{"k":"v"}})",
        v, &err))
        << err;
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.text("s"), "a\"b\xc3\xa9");
    EXPECT_EQ(v.num("n"), -150.0);
    const json::Value *arr = v.find("arr");
    ASSERT_NE(arr, nullptr);
    ASSERT_EQ(arr->kind, json::Value::Kind::Array);
    EXPECT_EQ(arr->items.size(), 3u);
    const json::Value *obj = v.find("obj");
    ASSERT_NE(obj, nullptr);
    EXPECT_EQ(obj->text("k"), "v");
}

TEST(JsonParser, RejectsMalformedInput)
{
    json::Value v;
    EXPECT_FALSE(json::parse("", v));
    EXPECT_FALSE(json::parse("{", v));
    EXPECT_FALSE(json::parse("{\"a\":}", v));
    EXPECT_FALSE(json::parse("[1,2,]", v));
    EXPECT_FALSE(json::parse("{} trailing", v));
    EXPECT_FALSE(json::parse("\"unterminated", v));
}

TEST(TelemetryReport, SummarizesAStreamAndRejectsEmptyInput)
{
    // A run's worth of events, hand-written so the test pins the
    // report against the documented schema, not the emitter.
    std::istringstream in(
        "{\"ev\":\"meta\",\"version\":1,\"heartbeat_insts\":1000}\n"
        "{\"ev\":\"span\",\"name\":\"driver.cell\",\"tid\":1,"
        "\"t_us\":0,\"dur_us\":2000000,\"depth\":0,\"attrs\":"
        "{\"workload\":\"w1\",\"scheme\":\"LRU\"}}\n"
        "{\"ev\":\"span\",\"name\":\"driver.cell\",\"tid\":2,"
        "\"t_us\":0,\"dur_us\":500000,\"depth\":0,\"attrs\":"
        "{\"workload\":\"w2\",\"scheme\":\"ACIC\"}}\n"
        "{\"ev\":\"count\",\"name\":\"engine.heartbeat\",\"tid\":1,"
        "\"t_us\":1000,\"attrs\":{\"window_insts\":1000,"
        "\"window_mpki\":25.0,\"window_ipc\":0.5,"
        "\"minst_per_s\":10.0}}\n"
        "not json at all\n"
        "{\"ev\":\"gauge\",\"name\":\"driver.queue_depth\","
        "\"tid\":1,\"t_us\":5,\"value\":3}\n");
    std::ostringstream out;
    std::string error;
    ASSERT_TRUE(
        writeTelemetryReport(in, out, ReportOptions{}, error))
        << error;
    const std::string text = out.str();
    EXPECT_NE(text.find("5 events"), std::string::npos) << text;
    EXPECT_NE(text.find("1 unparseable"), std::string::npos);
    EXPECT_NE(text.find("Phase time breakdown"), std::string::npos);
    EXPECT_NE(text.find("Slowest cells"), std::string::npos);
    // w1/LRU (2.0 s) must rank above w2/ACIC (0.5 s).
    EXPECT_LT(text.find("w1"), text.find("w2"));
    EXPECT_NE(text.find("Heartbeats"), std::string::npos);
    EXPECT_NE(text.find("driver.queue_depth"), std::string::npos);

    std::istringstream empty("\n\n");
    std::ostringstream out2;
    EXPECT_FALSE(
        writeTelemetryReport(empty, out2, ReportOptions{}, error));
    EXPECT_FALSE(error.empty());

    std::istringstream junk("only\ngarbage\nlines\n");
    std::ostringstream out3;
    EXPECT_FALSE(
        writeTelemetryReport(junk, out3, ReportOptions{}, error));
}

TEST(TelemetryReport, TopCellsOptionTruncates)
{
    std::ostringstream stream;
    for (int i = 0; i < 8; ++i)
        stream << "{\"ev\":\"span\",\"name\":\"driver.cell\","
                  "\"tid\":1,\"t_us\":0,\"dur_us\":"
               << (1000 + i)
               << ",\"depth\":0,\"attrs\":{\"workload\":\"w"
               << i << "\",\"scheme\":\"LRU\"}}\n";
    std::istringstream in(stream.str());
    std::ostringstream out;
    std::string error;
    ReportOptions options;
    options.topCells = 3;
    ASSERT_TRUE(writeTelemetryReport(in, out, options, error));
    const std::string text = out.str();
    // Slowest three are w7, w6, w5; w0 must have been cut.
    EXPECT_NE(text.find("w7"), std::string::npos);
    EXPECT_NE(text.find("w5"), std::string::npos);
    EXPECT_EQ(text.find("w0 "), std::string::npos);
}
