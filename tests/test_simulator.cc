/**
 * @file
 * Integration tests of the timing simulator and the scheme catalogue:
 * full-run invariants (all instructions retire, IPC bounds, miss
 * accounting), determinism, OPT-never-worse property, scheme factory
 * coverage, and prefetcher effects.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"

using namespace acic;

namespace {

WorkloadParams
tinyWorkload(const char *name = "sibench",
             std::uint64_t instructions = 200'000)
{
    auto params = Workloads::byName(name);
    params.instructions = instructions;
    return params;
}

} // namespace

TEST(Simulator, RetiresEveryInstruction)
{
    WorkloadContext context(tinyWorkload());
    const SimResult r = context.run("lru");
    // Post-warmup instructions = 90% of the trace.
    EXPECT_EQ(r.instructions, 180'000u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(Simulator, IpcWithinPhysicalBounds)
{
    WorkloadContext context(tinyWorkload());
    const SimResult r = context.run("lru");
    EXPECT_GT(r.ipc(), 0.1);
    EXPECT_LE(r.ipc(), 6.0); // retire width
}

TEST(Simulator, DeterministicAcrossRuns)
{
    WorkloadContext context(tinyWorkload());
    const SimResult a = context.run("lru");
    const SimResult b = context.run("lru");
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
}

TEST(Simulator, MissesImplyDemandAccesses)
{
    WorkloadContext context(tinyWorkload());
    const SimResult r = context.run("lru");
    EXPECT_GT(r.demandAccesses, 0u);
    EXPECT_LE(r.l1iMisses, r.demandAccesses);
    EXPECT_GT(r.mpki(), 0.0);
}

TEST(Simulator, OptNeverMissesMoreThanLru)
{
    WorkloadContext context(tinyWorkload("media_streaming"));
    const SimResult lru = context.run("lru");
    const SimResult opt = context.run("opt");
    EXPECT_LE(opt.l1iMisses, lru.l1iMisses);
    EXPECT_LE(opt.cycles, lru.cycles + lru.cycles / 100);
}

TEST(Simulator, LargerIcacheDoesNotIncreaseMisses)
{
    WorkloadContext context(tinyWorkload("media_streaming"));
    const SimResult base = context.run("lru");
    const SimResult big = context.run("l1i36k");
    EXPECT_LE(big.l1iMisses, base.l1iMisses + base.l1iMisses / 50);
}

TEST(Simulator, PrefetchingReducesMisses)
{
    auto params = tinyWorkload("media_streaming");
    SimConfig no_prefetch;
    no_prefetch.prefetcher = PrefetcherKind::None;
    WorkloadContext without(params, no_prefetch);
    WorkloadContext with(params); // FDP default
    const SimResult r_without = without.run("lru");
    const SimResult r_with = with.run("lru");
    EXPECT_LT(r_with.l1iMisses, r_without.l1iMisses);
    EXPECT_GT(r_with.prefetchesIssued, 0u);
}

TEST(Simulator, EntanglingPrefetcherRuns)
{
    auto params = tinyWorkload("media_streaming");
    SimConfig config;
    config.prefetcher = PrefetcherKind::Entangling;
    WorkloadContext context(params, config);
    const SimResult r = context.run("lru");
    EXPECT_GT(r.prefetchesIssued, 0u);
    EXPECT_EQ(r.instructions, 180'000u);
}

TEST(Simulator, VictimCacheReducesMissesVsBaseline)
{
    WorkloadContext context(tinyWorkload("media_streaming"));
    const SimResult base = context.run("lru");
    const SimResult vc = context.run("vc3k");
    EXPECT_LE(vc.l1iMisses, base.l1iMisses);
}

class AllSchemes : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AllSchemes, RunsToCompletionWithSaneMetrics)
{
    WorkloadContext context(tinyWorkload("data_serving", 100'000));
    const SchemeSpec spec = parseScheme(GetParam());
    const SimResult r = context.run(spec);
    EXPECT_EQ(r.instructions, 90'000u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc(), 0.05);
    EXPECT_EQ(r.scheme, schemeName(spec));
}

INSTANTIATE_TEST_SUITE_P(
    Catalogue, AllSchemes,
    ::testing::Values("lru", "srrip", "ship", "harmony", "ghrp",
                      "dsb", "obm", "vvc", "vc3k", "vc8k", "l1i36k",
                      "l1i40k", "opt", "opt_bypass", "acic",
                      "acic_instant", "always_insert",
                      "ifilter_only", "access_count",
                      "random_bypass", "acic_global_history",
                      "acic_bimodal"),
    [](const auto &param_info) {
        std::string name = param_info.param;
        for (auto &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(Schemes, NamesAreUniqueAndNonEmpty)
{
    std::set<std::string> names;
    std::set<std::string> keys;
    for (const SchemeSpec &s : allSchemes()) {
        EXPECT_FALSE(schemeName(s).empty());
        EXPECT_TRUE(names.insert(schemeName(s)).second);
        EXPECT_TRUE(keys.insert(s.key).second);
    }
    EXPECT_EQ(names.size(), 22u);
}

TEST(Schemes, AcicStorageIs267Kb)
{
    const SimConfig config;
    const auto org = makeScheme(parseScheme("acic"), config);
    EXPECT_NEAR(static_cast<double>(org->storageOverheadBits()) /
                    8.0 / 1024.0,
                2.67, 0.01);
}

TEST(Schemes, LargerIcacheReportsCapacityOverhead)
{
    const SimConfig config;
    const auto org = makeScheme(parseScheme("l1i36k"), config);
    // 64 extra blocks: ~4 KB of data + tags.
    EXPECT_GT(org->storageOverheadBits(), 64u * 64 * 8);
}

TEST(Runner, EnvOverrideAppliesToLength)
{
    auto params = tinyWorkload();
    ::setenv("ACIC_TRACE_LEN", "123456", 1);
    const auto overridden =
        WorkloadContext::withEnvOverrides(params);
    EXPECT_EQ(overridden.instructions, 123'456u);
    ::unsetenv("ACIC_TRACE_LEN");
    const auto plain = WorkloadContext::withEnvOverrides(params);
    EXPECT_EQ(plain.instructions, params.instructions);
}
