/**
 * @file
 * Tests of the replacement policies the paper compares: SRRIP RRPV
 * mechanics, SHiP signature training, GHRP dead-block prediction,
 * Hawkeye/Harmony OPTgen training, and Belady OPT optimality
 * properties (including OPT never losing to LRU on any sequence).
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "cache/ghrp.hh"
#include "cache/hawkeye.hh"
#include "cache/lru.hh"
#include "cache/opt.hh"
#include "cache/set_assoc.hh"
#include "cache/ship.hh"
#include "cache/srrip.hh"
#include "common/rng.hh"

using namespace acic;

namespace {

CacheAccess
access(BlockAddr blk, Addr pc = 0x4000,
       std::uint64_t next_use = kNeverAgain)
{
    CacheAccess a;
    a.blk = blk;
    a.pc = pc;
    a.nextUse = next_use;
    return a;
}

/** Simulate a block sequence, returning the miss count. */
template <typename PolicyFactory>
std::uint64_t
missesOn(const std::vector<BlockAddr> &seq, PolicyFactory factory,
         std::uint32_t sets = 1, std::uint32_t ways = 4,
         bool with_next_use = false)
{
    SetAssocCache cache(sets, ways, factory());
    // Precompute next-use indices when requested (for OPT).
    std::vector<std::uint64_t> next_use(seq.size(), kNeverAgain);
    if (with_next_use) {
        std::unordered_map<BlockAddr, std::uint64_t> upcoming;
        for (std::size_t i = seq.size(); i-- > 0;) {
            const auto it = upcoming.find(seq[i]);
            if (it != upcoming.end())
                next_use[i] = it->second;
            upcoming[seq[i]] = i;
        }
    }
    std::uint64_t misses = 0;
    for (std::size_t i = 0; i < seq.size(); ++i) {
        CacheAccess a = access(seq[i], 0x4000 + 4 * seq[i],
                               next_use[i]);
        a.seq = i;
        if (!cache.lookup(a)) {
            ++misses;
            cache.fill(a);
        }
    }
    return misses;
}

} // namespace

TEST(Srrip, InsertionAndPromotion)
{
    SetAssocCache cache(1, 4, std::make_unique<SrripPolicy>());
    auto &srrip = static_cast<SrripPolicy &>(cache.policy());
    cache.fill(access(10));
    const auto way = cache.probeWay(10);
    EXPECT_EQ(srrip.rrpvOf(0, *way), 2); // maxRrpv - 1 on insert
    cache.lookup(access(10));
    EXPECT_EQ(srrip.rrpvOf(0, *way), 0); // promoted on hit
}

TEST(Srrip, AgingFindsVictim)
{
    SetAssocCache cache(1, 2, std::make_unique<SrripPolicy>());
    cache.fill(access(1));
    cache.fill(access(2));
    cache.lookup(access(1)); // rrpv 0
    // Victim selection must age and pick block 2 (higher RRPV).
    const auto result = cache.fill(access(3));
    ASSERT_TRUE(result.evicted);
    EXPECT_EQ(result.victim.blk, 2u);
}

TEST(Srrip, StorageMatchesTableIV)
{
    SrripPolicy policy;
    policy.bind(64, 8);
    // 2-bit RRPV x 512 lines = 1024 bits = 0.125 KB (Table IV).
    EXPECT_EQ(policy.storageOverheadBits(), 1024u);
}

TEST(Ship, NonReusedSignatureLearnsDistantInsertion)
{
    SetAssocCache cache(1, 4, std::make_unique<ShipPolicy>());
    auto &ship = static_cast<ShipPolicy &>(cache.policy());
    const Addr streaming_pc = 0xdead0;
    // Stream many never-reused blocks from one PC: SHCT for that
    // signature decays to zero.
    for (std::uint64_t i = 0; i < 64; ++i)
        cache.fill(access(1000 + i, streaming_pc));
    // A block from a reused PC stays; streaming-signature blocks
    // insert at distant RRPV and are preferred victims over it.
    cache.fill(access(7, 0x1111));
    cache.lookup(access(7, 0x1111));
    cache.fill(access(2000, streaming_pc));
    const auto result = cache.fill(access(3000, 0x2222));
    ASSERT_TRUE(result.evicted);
    EXPECT_NE(result.victim.blk, 7u);
    EXPECT_TRUE(cache.probe(7));
    EXPECT_NE(ship.signatureOf(streaming_pc),
              ship.signatureOf(0x1111));
}

TEST(Ship, StorageMatchesTableIV)
{
    ShipPolicy policy;
    policy.bind(64, 8);
    // 512 x (2 RRPV + 13 sig + 1 outcome) + 8192 x 2 = 24576 bits
    // = 2.88 KB plus the RRPV baseline -- Table IV rounds to 2.88KB.
    EXPECT_NEAR(static_cast<double>(policy.storageOverheadBits()) /
                    8.0 / 1024.0,
                2.88, 0.2);
}

TEST(Ghrp, TrainingFlipsDeadPrediction)
{
    GhrpPolicy ghrp;
    ghrp.bind(64, 8);
    const std::uint32_t sig = 0x1234;
    EXPECT_FALSE(ghrp.predictDead(sig)); // counters start at 0
}

TEST(Ghrp, DeadBlocksPreferredAsVictims)
{
    SetAssocCache cache(1, 4, std::make_unique<GhrpPolicy>());
    // Exercise a mixed stream; GHRP must keep functioning and always
    // return a legal way.
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        CacheAccess a = access(rng.nextBelow(32),
                               0x4000 + 4 * rng.nextBelow(64));
        if (!cache.lookup(a))
            cache.fill(a);
    }
    EXPECT_LE(cache.validLines(), 4u);
}

TEST(Ghrp, HistoryAdvancesOnAccess)
{
    SetAssocCache cache(1, 2, std::make_unique<GhrpPolicy>());
    auto &ghrp = static_cast<GhrpPolicy &>(cache.policy());
    const auto before = ghrp.history();
    cache.fill(access(1, 0xabcd0));
    EXPECT_NE(ghrp.history(), before);
}

TEST(Ghrp, StorageMatchesTableIV)
{
    GhrpPolicy policy;
    policy.bind(64, 8);
    // ~4.06 KB per Table IV.
    EXPECT_NEAR(static_cast<double>(policy.storageOverheadBits()) /
                    8.0 / 1024.0,
                4.06, 0.15);
}

TEST(Hawkeye, ColdPredictorIsFriendly)
{
    HawkeyePolicy hawkeye;
    hawkeye.bind(64, 8);
    EXPECT_TRUE(hawkeye.predictFriendly(0x4000));
}

TEST(Hawkeye, ThrashingPcBecomesAverse)
{
    SetAssocCache cache(8, 8, std::make_unique<HawkeyePolicy>());
    auto &hawkeye = static_cast<HawkeyePolicy &>(cache.policy());
    const Addr pc = 0x7000;
    // Cyclic sweep over far more blocks than capacity from one PC,
    // hitting sampled set 0: OPTgen sees no OPT hits -> averse.
    for (int round = 0; round < 60; ++round) {
        for (BlockAddr b = 0; b < 32; ++b) {
            CacheAccess a = access(b * 8, pc); // all map to set 0
            if (!cache.lookup(a))
                cache.fill(a);
        }
    }
    EXPECT_FALSE(hawkeye.predictFriendly(pc));
}

TEST(Hawkeye, StorageMatchesTableIV)
{
    HawkeyePolicy policy;
    policy.bind(64, 8);
    EXPECT_NEAR(static_cast<double>(policy.storageOverheadBits()) /
                    8.0 / 1024.0,
                4.69, 0.8);
}

TEST(Opt, VictimIsFarthestNextUse)
{
    std::vector<CacheLine> lines(4);
    for (std::uint32_t i = 0; i < 4; ++i) {
        lines[i].valid = true;
        lines[i].blk = i;
        lines[i].nextUse = 100 - i * 10;
    }
    EXPECT_EQ(OptPolicy::optVictim(lines.data(), 4), 0u);
    lines[2].nextUse = kNeverAgain;
    EXPECT_EQ(OptPolicy::optVictim(lines.data(), 4), 2u);
    lines[1].valid = false;
    EXPECT_EQ(OptPolicy::optVictim(lines.data(), 4), 1u);
}

TEST(Opt, BeatsLruOnCyclicSweep)
{
    // Classic LRU pathology: cyclic sweep over ways+1 blocks.
    std::vector<BlockAddr> seq;
    for (int round = 0; round < 50; ++round)
        for (BlockAddr b = 0; b < 5; ++b)
            seq.push_back(b);
    const auto lru_misses = missesOn(
        seq, [] { return std::make_unique<LruPolicy>(); }, 1, 4);
    const auto opt_misses = missesOn(
        seq, [] { return std::make_unique<OptPolicy>(); }, 1, 4,
        true);
    EXPECT_EQ(lru_misses, seq.size()); // LRU misses everything
    EXPECT_LT(opt_misses, lru_misses / 2);
}

class OptNeverLoses : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(OptNeverLoses, OnRandomSequences)
{
    Rng rng(GetParam());
    std::vector<BlockAddr> seq;
    for (int i = 0; i < 4000; ++i)
        seq.push_back(rng.nextBelow(24));
    const auto lru_misses = missesOn(
        seq, [] { return std::make_unique<LruPolicy>(); }, 1, 8);
    const auto opt_misses = missesOn(
        seq, [] { return std::make_unique<OptPolicy>(); }, 1, 8,
        true);
    EXPECT_LE(opt_misses, lru_misses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptNeverLoses,
                         ::testing::Range(1u, 9u));
