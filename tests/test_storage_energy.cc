/**
 * @file
 * Tests of the Table I / Table IV storage accounting and the energy
 * model: totals match the paper's reported budgets, and the energy
 * trade-off moves in the right direction with cycle count and
 * structure activity.
 */

#include <gtest/gtest.h>

#include "core/storage.hh"
#include "sim/energy.hh"

using namespace acic;

TEST(Storage, TableIComponentsMatchPaper)
{
    const auto rows = acicStorageBreakdown();
    ASSERT_EQ(rows.size(), 5u);
    EXPECT_EQ(rows[0].component, "i-Filter");
    EXPECT_NEAR(rows[0].kilobytes(), 1.123, 0.01);
    EXPECT_EQ(rows[1].component, "HRT");
    EXPECT_NEAR(rows[1].kilobytes(), 0.5, 0.001);
    EXPECT_EQ(rows[2].component, "PT");
    EXPECT_NEAR(rows[2].kilobytes() * 1024.0, 10.0, 0.01); // 10 B
    EXPECT_EQ(rows[3].component, "PT update queues");
    EXPECT_NEAR(rows[3].kilobytes() * 1024.0, 100.0, 0.5); // 100 B
    EXPECT_EQ(rows[4].component, "CSHR");
    EXPECT_NEAR(rows[4].kilobytes(), 0.9375, 0.001);
}

TEST(Storage, TotalIs267Kb)
{
    const auto rows = acicStorageBreakdown();
    EXPECT_NEAR(static_cast<double>(totalBits(rows)) / 8.0 / 1024.0,
                2.67, 0.01);
}

TEST(Storage, TableIvCoversAllSchemes)
{
    const auto rows = schemeStorageTable();
    EXPECT_GE(rows.size(), 12u);
    double acic_kb = 0.0, ghrp_kb = 0.0, srrip_kb = 0.0;
    for (const auto &row : rows) {
        if (row.component == "ACIC")
            acic_kb = row.kilobytes();
        if (row.component == "GHRP")
            ghrp_kb = row.kilobytes();
        if (row.component == "SRRIP")
            srrip_kb = row.kilobytes();
    }
    EXPECT_NEAR(acic_kb, 2.67, 0.01);
    EXPECT_NEAR(ghrp_kb, 4.06, 0.15);
    EXPECT_NEAR(srrip_kb, 0.125, 0.001);
    // The headline comparison: ACIC ~= 2/3 of GHRP.
    EXPECT_LT(acic_kb, ghrp_kb * 0.75);
}

TEST(Energy, FewerCyclesMeansLessStaticEnergy)
{
    SimResult fast, slow;
    fast.instructions = slow.instructions = 1'000'000;
    fast.cycles = 500'000;
    slow.cycles = 600'000;
    const auto fast_e = computeEnergy(fast);
    const auto slow_e = computeEnergy(slow);
    EXPECT_LT(fast_e.staticNj, slow_e.staticNj);
}

TEST(Energy, AcicStructuresAddDynamicEnergy)
{
    SimResult r;
    r.instructions = 1'000'000;
    r.cycles = 500'000;
    r.demandAccesses = 200'000;
    r.orgStats.set("filtered.filter_victims", 50'000);
    const auto without = computeEnergy(r, {}, false);
    const auto with = computeEnergy(r, {}, true);
    EXPECT_GT(with.dynamicNj, without.dynamicNj);
    // ...but the adder is small relative to the total (the paper's
    // point: cycle savings dominate).
    EXPECT_LT(with.dynamicNj / without.dynamicNj, 1.05);
}

TEST(Energy, DramDominatesPerAccessCosts)
{
    const EnergyParams params;
    EXPECT_GT(params.dramAccessNj, params.l3AccessNj * 10);
    EXPECT_GT(params.l3AccessNj, params.l1iAccessNj);
}

TEST(Energy, TotalIsDynamicPlusStatic)
{
    SimResult r;
    r.instructions = 1000;
    r.cycles = 1000;
    r.demandAccesses = 100;
    const auto e = computeEnergy(r);
    EXPECT_DOUBLE_EQ(e.totalNj(), e.dynamicNj + e.staticNj);
    EXPECT_GT(e.totalNj(), 0.0);
}
