/**
 * @file
 * Golden-run regression corpus. Each fixture under tests/golden/ pins
 * the complete writeGoldenDump() output — headline SimResult counters
 * plus every organization counter, sorted — of one (scheme x
 * synthetic-workload) pair, captured before the stats-handle refactor.
 * A live run must reproduce its fixture byte for byte at any later
 * commit; a divergence is reported as the first differing line with
 * surrounding context, so a broken counter is named directly instead
 * of drowning in a full-dump diff.
 *
 * Regenerating (only when an intentional simulation change lands):
 *   ACIC_REGEN_GOLDEN=1 ./acic_tests --gtest_filter='GoldenRun*'
 * or equivalently capture `acic_run run --dump-stats` output for the
 * same pairs (DESIGN.md section 7) and review the diff like code.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "driver/emitters.hh"
#include "sim/runner.hh"
#include "trace/workload_params.hh"

using namespace acic;

namespace {

/** Trace length of every golden pair; small enough for ctest. */
constexpr std::uint64_t kGoldenInstructions = 200'000;

/** One pinned (workload, scheme) pair. */
struct GoldenCase
{
    const char *workload; ///< synthetic preset name
    const char *scheme;   ///< registry spec string
    /** Front-end prefetcher of the pinned run (a SimConfig knob, not
     *  part of the scheme spec). */
    PrefetcherKind prefetcher = PrefetcherKind::Fdp;
};

/**
 * The corpus: ACIC twice (the hot-path refactor's main target), the
 * plain-LRU and SRRIP organizations, the instant-update ablation, the
 * oracle-driven OPT-bypass path, and one cell in front of the
 * entangling prefetcher (the Fig. 20/21 baseline, otherwise only
 * exercised by benches).
 */
const std::vector<GoldenCase> &
goldenCases()
{
    static const std::vector<GoldenCase> cases = {
        {"web_search", "lru"},
        {"web_search", "acic"},
        {"media_streaming", "acic"},
        {"media_streaming", "srrip"},
        {"tpcc", "acic_instant"},
        {"tpcc", "opt_bypass"},
        {"web_search", "acic", PrefetcherKind::Entangling},
    };
    return cases;
}

const char *
prefetcherTag(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::None: return "nopf";
      case PrefetcherKind::Fdp: return "";
      case PrefetcherKind::Entangling: return "entangling";
    }
    return "";
}

std::string
fixturePath(const GoldenCase &c)
{
    // "acic(filter=32)" would be hostile as a file name; the corpus
    // only uses bare presets, so the spec string is path-safe.
    std::string path = std::string(ACIC_GOLDEN_DIR) + "/" +
                       c.workload + "__" + c.scheme;
    const std::string tag = prefetcherTag(c.prefetcher);
    if (!tag.empty())
        path += "__" + tag;
    return path + ".txt";
}

/** Workloads are shared across cases; build each (preset, prefetcher)
 *  image+oracle once. Null when @p name is not a datacenter preset. */
SharedWorkload *
workloadNamed(const std::string &name, PrefetcherKind prefetcher)
{
    static std::map<std::string, std::unique_ptr<SharedWorkload>>
        cache;
    const std::string key =
        name + "/" + std::to_string(static_cast<int>(prefetcher));
    auto it = cache.find(key);
    if (it == cache.end()) {
        WorkloadParams params;
        bool found = false;
        for (const WorkloadParams &preset : Workloads::datacenter()) {
            if (preset.name == name) {
                params = preset;
                found = true;
            }
        }
        if (!found)
            return nullptr;
        // Fixed length on purpose: ACIC_TRACE_LEN must not be able to
        // invalidate the corpus (SharedWorkload ignores the env var).
        params.instructions = kGoldenInstructions;
        SimConfig config;
        config.prefetcher = prefetcher;
        it = cache
                 .emplace(key, std::make_unique<SharedWorkload>(
                                   params, config))
                 .first;
    }
    return it->second.get();
}

std::string
liveDump(const GoldenCase &c)
{
    SharedWorkload *workload =
        workloadNamed(c.workload, c.prefetcher);
    if (workload == nullptr)
        return ""; // caller asserts; avoids simulating garbage
    const SimResult result = workload->run(std::string(c.scheme));
    std::ostringstream out;
    writeGoldenDump(out, result);
    return out.str();
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

/**
 * Readable first-divergence report: the earliest differing line with
 * two lines of context on each side, plus a length note when one dump
 * is a prefix of the other.
 */
std::string
firstDivergence(const std::string &expected, const std::string &actual)
{
    const std::vector<std::string> want = splitLines(expected);
    const std::vector<std::string> got = splitLines(actual);
    const std::size_t n = std::min(want.size(), got.size());
    std::size_t diff = n;
    for (std::size_t i = 0; i < n; ++i) {
        if (want[i] != got[i]) {
            diff = i;
            break;
        }
    }
    if (diff == n && want.size() == got.size())
        return "dumps are line-identical but differ in raw bytes "
               "(line endings?)";

    std::ostringstream out;
    out << "first divergence at line " << diff + 1 << ":\n";
    const std::size_t from = diff >= 2 ? diff - 2 : 0;
    for (std::size_t i = from; i <= diff; ++i) {
        out << "  fixture " << i + 1 << ": "
            << (i < want.size() ? want[i] : "<absent>") << '\n';
        out << "  live    " << i + 1 << ": "
            << (i < got.size() ? got[i] : "<absent>") << '\n';
    }
    out << "(fixture " << want.size() << " lines, live " << got.size()
        << " lines)";
    return out.str();
}

class GoldenRun : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(GoldenRun, MatchesFixture)
{
    const GoldenCase &c = goldenCases()[GetParam()];
    ASSERT_NE(workloadNamed(c.workload, c.prefetcher), nullptr)
        << "unknown golden preset " << c.workload;
    const std::string path = fixturePath(c);
    const std::string live = liveDump(c);

    if (std::getenv("ACIC_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << live;
        SUCCEED() << "regenerated " << path;
        return;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing fixture " << path
                    << "; regenerate with ACIC_REGEN_GOLDEN=1 "
                       "./acic_tests --gtest_filter='GoldenRun*'";
    std::ostringstream fixture;
    fixture << in.rdbuf();

    if (fixture.str() != live) {
        FAIL() << c.workload << " x " << c.scheme
               << " diverged from " << path << "\n"
               << firstDivergence(fixture.str(), live);
    }
}

std::string
caseName(const ::testing::TestParamInfo<std::size_t> &info)
{
    const GoldenCase &c = goldenCases()[info.param];
    std::string name = std::string(c.workload) + "__" + c.scheme;
    const std::string tag = prefetcherTag(c.prefetcher);
    if (!tag.empty())
        name += "__" + tag;
    return name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenRun,
                         ::testing::Range<std::size_t>(
                             0, goldenCases().size()),
                         caseName);

} // namespace
