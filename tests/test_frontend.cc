/**
 * @file
 * Tests of the front-end substrate: BTB lookup/replacement, return
 * address stack, TAGE learning (biased branches, loop exits,
 * history-correlated patterns), fetch-bundle formation rules, and the
 * entangling prefetcher's learning loop.
 */

#include <gtest/gtest.h>

#include <vector>

#include "frontend/btb.hh"
#include "frontend/bundle.hh"
#include "frontend/entangling.hh"
#include "frontend/tage.hh"
#include "trace/trace.hh"

using namespace acic;

namespace {

/** Minimal scripted trace for bundle-formation tests. */
class ScriptedTrace : public TraceSource
{
  public:
    explicit ScriptedTrace(std::vector<TraceInst> insts)
        : insts_(std::move(insts))
    {
    }
    void reset() override { pos_ = 0; }
    bool
    next(TraceInst &out) override
    {
        if (pos_ >= insts_.size())
            return false;
        out = insts_[pos_++];
        return true;
    }
    std::uint64_t length() const override { return insts_.size(); }
    const std::string &name() const override { return name_; }

  private:
    std::vector<TraceInst> insts_;
    std::size_t pos_ = 0;
    std::string name_ = "scripted";
};

TraceInst
seqInst(Addr pc)
{
    TraceInst inst;
    inst.pc = pc;
    inst.nextPc = pc + 4;
    inst.kind = BranchKind::None;
    return inst;
}

TraceInst
takenBranch(Addr pc, Addr target, BranchKind kind = BranchKind::Cond)
{
    TraceInst inst;
    inst.pc = pc;
    inst.nextPc = target;
    inst.kind = kind;
    inst.taken = true;
    return inst;
}

} // namespace

TEST(Btb, LookupAfterUpdate)
{
    Btb btb(64, 4);
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    btb.update(0x1000, 0x2000);
    const auto target = btb.lookup(0x1000);
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(*target, 0x2000u);
}

TEST(Btb, UpdateOverwritesTarget)
{
    Btb btb(64, 4);
    btb.update(0x1000, 0x2000);
    btb.update(0x1000, 0x3000);
    EXPECT_EQ(*btb.lookup(0x1000), 0x3000u);
}

TEST(Btb, LruReplacementWithinSet)
{
    Btb btb(8, 2); // 4 sets x 2 ways
    // Three PCs mapping to the same set (pc>>2 & 3).
    const Addr a = 0x10, b = 0x10 + 16, c = 0x10 + 32;
    btb.update(a, 1);
    btb.update(b, 2);
    btb.lookup(a); // refresh a
    btb.update(c, 3);
    EXPECT_TRUE(btb.lookup(a).has_value());
    EXPECT_FALSE(btb.lookup(b).has_value());
    EXPECT_TRUE(btb.lookup(c).has_value());
}

TEST(Ras, PushPopLifo)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.pop(), 0u); // empty
}

TEST(Ras, OverflowWrapsKeepingNewest)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3);
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
}

TEST(Tage, LearnsStronglyBiasedBranch)
{
    Tage tage;
    const Addr pc = 0x4040;
    for (int i = 0; i < 64; ++i) {
        tage.predict(pc);
        tage.update(pc, true);
    }
    EXPECT_TRUE(tage.predict(pc));
    tage.update(pc, true);
}

TEST(Tage, LearnsAlternatingPatternViaHistory)
{
    Tage tage;
    const Addr pc = 0x5050;
    // Strict alternation is history-predictable; TAGE must converge
    // to low error after warm-up.
    bool taken = false;
    int wrong = 0;
    for (int i = 0; i < 2000; ++i) {
        const bool pred = tage.predict(pc);
        if (i > 1000 && pred != taken)
            ++wrong;
        tage.update(pc, taken);
        taken = !taken;
    }
    EXPECT_LT(wrong, 100);
}

TEST(Tage, LearnsFixedTripLoop)
{
    Tage tage;
    const Addr pc = 0x6060;
    // Loop with 6 taken iterations then one not-taken exit.
    int wrong = 0, total = 0;
    for (int round = 0; round < 300; ++round) {
        for (int trip = 0; trip < 7; ++trip) {
            const bool taken = trip < 6;
            const bool pred = tage.predict(pc);
            if (round > 150) {
                ++total;
                wrong += pred != taken ? 1 : 0;
            }
            tage.update(pc, taken);
        }
    }
    // Exit prediction requires history; demand clear improvement
    // over always-taken (which would be wrong 1/7 ~= 14%).
    EXPECT_LT(static_cast<double>(wrong) / total, 0.10);
}

TEST(Tage, TracksAccuracyCounters)
{
    Tage tage;
    tage.predict(0x1234);
    tage.update(0x1234, true);
    EXPECT_EQ(tage.predictions(), 1u);
    EXPECT_LE(tage.mispredicts(), 1u);
}

TEST(Bundle, SplitsAtFetchWidth)
{
    std::vector<TraceInst> insts;
    for (Addr pc = 0; pc < 4 * 16; pc += 4)
        insts.push_back(seqInst(pc));
    ScriptedTrace trace(insts);
    BundleWalker walker(trace, 6);
    Bundle bundle;
    ASSERT_TRUE(walker.next(bundle));
    EXPECT_EQ(bundle.count, 6);
    EXPECT_EQ(bundle.pc, 0u);
    ASSERT_TRUE(walker.next(bundle));
    EXPECT_EQ(bundle.pc, 24u);
}

TEST(Bundle, SplitsAtBlockBoundary)
{
    std::vector<TraceInst> insts;
    // Start 2 instructions before a block boundary.
    for (Addr pc = 56; pc < 120; pc += 4)
        insts.push_back(seqInst(pc));
    ScriptedTrace trace(insts);
    BundleWalker walker(trace, 6);
    Bundle bundle;
    ASSERT_TRUE(walker.next(bundle));
    EXPECT_EQ(bundle.count, 2); // 56, 60 end block 0
    EXPECT_EQ(bundle.blk, 0u);
    ASSERT_TRUE(walker.next(bundle));
    EXPECT_EQ(bundle.blk, 1u);
    EXPECT_EQ(bundle.pc, 64u);
}

TEST(Bundle, SplitsAtTakenBranch)
{
    std::vector<TraceInst> insts;
    insts.push_back(seqInst(0));
    insts.push_back(takenBranch(4, 256));
    insts.push_back(seqInst(256));
    insts.push_back(seqInst(260));
    ScriptedTrace trace(insts);
    BundleWalker walker(trace, 6);
    Bundle bundle;
    ASSERT_TRUE(walker.next(bundle));
    EXPECT_EQ(bundle.count, 2);
    ASSERT_TRUE(walker.next(bundle));
    EXPECT_EQ(bundle.pc, 256u);
    EXPECT_EQ(bundle.count, 2);
    EXPECT_FALSE(walker.next(bundle));
}

TEST(Bundle, IntraBlockBackwardBranchSplitsButKeepsBlock)
{
    std::vector<TraceInst> insts;
    insts.push_back(seqInst(8));
    insts.push_back(takenBranch(12, 0)); // backward within block 0
    insts.push_back(seqInst(0));
    ScriptedTrace trace(insts);
    BundleWalker walker(trace, 6);
    Bundle bundle;
    ASSERT_TRUE(walker.next(bundle));
    EXPECT_EQ(bundle.blk, 0u);
    EXPECT_EQ(bundle.count, 2);
    ASSERT_TRUE(walker.next(bundle));
    EXPECT_EQ(bundle.blk, 0u); // distance-0 reuse
}

TEST(Bundle, ResetReplays)
{
    std::vector<TraceInst> insts;
    for (Addr pc = 0; pc < 4 * 20; pc += 4)
        insts.push_back(seqInst(pc));
    ScriptedTrace trace(insts);
    BundleWalker walker(trace, 6);
    Bundle bundle;
    std::vector<Addr> first;
    while (walker.next(bundle))
        first.push_back(bundle.pc);
    walker.reset();
    std::size_t i = 0;
    while (walker.next(bundle))
        ASSERT_EQ(bundle.pc, first[i++]);
    EXPECT_EQ(i, first.size());
}

TEST(Entangling, LearnsSourceDestinationPair)
{
    EntanglingPrefetcher pf(64, 2, 16);
    // Access A at cycle 0, miss B at cycle 100 with 50-cycle fill:
    // A qualifies as the just-in-time source.
    pf.onDemandAccess(10, 0);
    pf.onDemandMiss(20, 100, 50);
    // Future access of A must emit B.
    pf.onDemandAccess(10, 200);
    BlockAddr candidate;
    ASSERT_TRUE(pf.popCandidate(candidate));
    EXPECT_EQ(candidate, 20u);
    EXPECT_FALSE(pf.popCandidate(candidate));
}

TEST(Entangling, TooRecentSourceIsSkipped)
{
    EntanglingPrefetcher pf(64, 2, 16);
    pf.onDemandAccess(10, 95);
    pf.onDemandMiss(20, 100, 50); // A only 5 cycles old: not timely
    pf.onDemandAccess(10, 200);
    BlockAddr candidate;
    EXPECT_FALSE(pf.popCandidate(candidate));
}

TEST(Entangling, CapsDestinationsPerSource)
{
    EntanglingPrefetcher pf(64, 2, 16);
    pf.onDemandAccess(10, 0);
    pf.onDemandMiss(20, 100, 50);
    pf.onDemandMiss(21, 110, 50);
    pf.onDemandMiss(22, 120, 50);
    pf.onDemandAccess(10, 500);
    int count = 0;
    BlockAddr candidate;
    while (pf.popCandidate(candidate))
        ++count;
    EXPECT_EQ(count, 2);
}
