/**
 * @file
 * Equivalence property tests for the vectorized tag-scan kernels:
 * every implementation (SSE2, AVX2 when the CPU has it, and the
 * dispatched entry points the simulator actually calls) must compute
 * bit-identical results to the portable reference on randomized
 * lanes, for every count including vector-tail remainders — the
 * invariant that lets the forced-portable CI build pin the golden
 * corpus.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/tagscan.hh"

using namespace acic;
using namespace acic::tagscan;

namespace {

/** Lanes with planted duplicates of @p target so matches land at
 *  arbitrary positions (including vector tails). */
std::vector<std::uint64_t>
randomLanes64(Rng &rng, std::uint32_t count, std::uint64_t target)
{
    std::vector<std::uint64_t> lanes(count);
    for (auto &lane : lanes) {
        // Small value range forces frequent accidental equality;
        // 10% planted exact targets.
        lane = rng.chance(0.1) ? target : rng.nextBelow(64);
    }
    return lanes;
}

std::vector<std::uint32_t>
randomLanes32(Rng &rng, std::uint32_t count, std::uint32_t target)
{
    std::vector<std::uint32_t> lanes(count);
    for (auto &lane : lanes)
        lane = rng.chance(0.1)
                   ? target
                   : static_cast<std::uint32_t>(rng.nextBelow(64));
    return lanes;
}

} // namespace

TEST(TagScan, ActiveIsaNamesARealStack)
{
    const std::string isa = activeIsa();
    EXPECT_TRUE(isa == "avx2" || isa == "sse2" || isa == "portable")
        << isa;
#ifndef ACIC_TAGSCAN_SIMD
    EXPECT_EQ(isa, "portable");
#endif
}

TEST(TagScan, MatchMask64AllPathsEqualPortable)
{
    Rng rng(2024);
    // Every count from empty through past the wide threshold covers
    // full vectors, scalar tails, and both dispatch branches.
    for (std::uint32_t count = 0; count <= 64; ++count) {
        for (int round = 0; round < 16; ++round) {
            const std::uint64_t target = rng.nextBelow(64);
            const auto lanes = randomLanes64(rng, count, target);
            const std::uint64_t want =
                matchMask64Portable(lanes.data(), count, target);

            EXPECT_EQ(matchMask64(lanes.data(), count, target), want)
                << "count " << count;
#ifdef ACIC_TAGSCAN_SIMD
            EXPECT_EQ(matchMask64Sse2(lanes.data(), count, target),
                      want)
                << "count " << count;
            EXPECT_EQ(matchMask64Wide(lanes.data(), count, target),
                      want)
                << "count " << count;
            if (avx2Supported()) {
                EXPECT_EQ(
                    matchMask64Avx2(lanes.data(), count, target),
                    want)
                    << "count " << count;
            }
#endif
        }
    }
}

TEST(TagScan, MatchMask64SeesSplit64BitLanes)
{
    // The SSE2 kernel compares 32-bit halves and fuses them; a lane
    // agreeing with the target in only ONE half must not match.
    const std::uint64_t target = 0x00000001'00000002ull;
    const std::uint64_t lanes[4] = {
        0x00000001'00000002ull, // full match
        0x00000001'ffffffffull, // high half only
        0xffffffff'00000002ull, // low half only
        0x00000002'00000001ull, // halves swapped
    };
    const std::uint64_t want =
        matchMask64Portable(lanes, 4, target);
    EXPECT_EQ(want, 0x1u);
    EXPECT_EQ(matchMask64(lanes, 4, target), want);
#ifdef ACIC_TAGSCAN_SIMD
    EXPECT_EQ(matchMask64Sse2(lanes, 4, target), want);
    if (avx2Supported())
        EXPECT_EQ(matchMask64Avx2(lanes, 4, target), want);
#endif
}

TEST(TagScan, AnyEqual32AllPathsEqualPortable)
{
    Rng rng(4048);
    for (std::uint32_t count = 0; count <= 48; ++count) {
        for (int round = 0; round < 16; ++round) {
            const auto target =
                static_cast<std::uint32_t>(rng.nextBelow(64));
            const auto lanes = randomLanes32(rng, count, target);
            const bool want =
                anyEqual32Portable(lanes.data(), count, target);

            EXPECT_EQ(anyEqual32(lanes.data(), count, target), want)
                << "count " << count;
#ifdef ACIC_TAGSCAN_SIMD
            EXPECT_EQ(anyEqual32Sse2(lanes.data(), count, target),
                      want)
                << "count " << count;
            EXPECT_EQ(anyEqual32Wide(lanes.data(), count, target),
                      want)
                << "count " << count;
            if (avx2Supported()) {
                EXPECT_EQ(
                    anyEqual32Avx2(lanes.data(), count, target),
                    want)
                    << "count " << count;
            }
#endif
        }
    }
}

TEST(TagScan, AnyEqual32PairAllPathsEqualPortable)
{
    Rng rng(777);
    for (std::uint32_t count = 0; count <= 48; ++count) {
        for (int round = 0; round < 16; ++round) {
            const auto target =
                static_cast<std::uint32_t>(rng.nextBelow(64));
            const auto a = randomLanes32(rng, count, target);
            const auto b = randomLanes32(rng, count, target);
            const bool want = anyEqual32PairPortable(
                a.data(), b.data(), count, target);

            EXPECT_EQ(
                anyEqual32Pair(a.data(), b.data(), count, target),
                want)
                << "count " << count;
#ifdef ACIC_TAGSCAN_SIMD
            EXPECT_EQ(
                anyEqual32PairSse2(a.data(), b.data(), count,
                                   target),
                want)
                << "count " << count;
            EXPECT_EQ(
                anyEqual32PairWide(a.data(), b.data(), count,
                                   target),
                want)
                << "count " << count;
            if (avx2Supported()) {
                EXPECT_EQ(anyEqual32PairAvx2(a.data(), b.data(),
                                             count, target),
                          want)
                    << "count " << count;
            }
#endif
        }
    }
}

TEST(TagScan, PairMatchInSecondRowOnly)
{
    // The pair sweep must see row b even when row a is all misses.
    std::vector<std::uint32_t> a(40, 1u);
    std::vector<std::uint32_t> b(40, 2u);
    b[39] = 77; // match in the scalar tail of the second row
    EXPECT_TRUE(anyEqual32Pair(a.data(), b.data(), 40, 77));
    EXPECT_FALSE(anyEqual32Pair(a.data(), b.data(), 39, 77));
}

TEST(TagScan, PadLanes64RoundsToStride)
{
    EXPECT_EQ(padLanes64(0), 0u);
    EXPECT_EQ(padLanes64(1), kLaneStride64);
    EXPECT_EQ(padLanes64(kLaneStride64), kLaneStride64);
    EXPECT_EQ(padLanes64(kLaneStride64 + 1), 2 * kLaneStride64);
    EXPECT_EQ(padLanes64(8), 8u);
}
