/**
 * @file
 * Checkpoint/resume correctness battery (the crash-safety acceptance
 * bar of the distributed-sweep work):
 *
 *  - Round-trip property over every registered scheme preset:
 *    serialize a mid-measure engine, load it into a freshly
 *    constructed engine in pristine state, run both to completion,
 *    and diff the complete writeGoldenDump() statistics byte for
 *    byte against the uninterrupted run — at seeded-random
 *    checkpoint instants, so the cut point is not a lucky boundary.
 *  - Container hardening: bit flips (CRC), truncation, bad magic,
 *    foreign version, wrong payload tag — each must be rejected
 *    with its own diagnostic, never silently loaded.
 *  - Identity hardening: a checkpoint taken over one workload or
 *    scheme must refuse to resume a different one.
 *  - Driver checkpointing: completed cells persist into
 *    --checkpoint-dir files, a rerun preloads them bit-identically
 *    without resimulating, and shard partitions are disjoint,
 *    covering, and cell-for-cell equal to the monolithic run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "driver/emitters.hh"
#include "driver/experiment.hh"
#include "sim/engine.hh"
#include "sim/runner.hh"
#include "sim/scheme.hh"
#include "trace/workload_params.hh"

using namespace acic;

namespace {

/** One shared workload for the whole suite (materialized once). */
const SharedWorkload &
workload()
{
    static const SharedWorkload *shared = [] {
        WorkloadParams params = Workloads::byName("web_search");
        params.instructions = 50'000;
        return new SharedWorkload(params);
    }();
    return *shared;
}

std::string
golden(const SimResult &result)
{
    std::ostringstream out;
    writeGoldenDump(out, result);
    return out.str();
}

std::uint64_t
warmupOf(const SharedWorkload &shared)
{
    return static_cast<std::uint64_t>(
        static_cast<double>(shared.instructions()) *
        shared.config().warmupFraction);
}

/**
 * Run @p spec with a checkpoint at @p cut measured instructions: the
 * first engine stops mid-measure and serializes, a second engine —
 * fresh organization, fresh trace cursor, nothing carried over but
 * the byte stream — loads and finishes the run.
 */
SimResult
runWithCheckpoint(const SharedWorkload &shared,
                  const SchemeSpec &spec, std::uint64_t cut)
{
    const std::uint64_t warm = warmupOf(shared);
    const std::uint64_t measured = shared.instructions() - warm;

    Serializer s;
    {
        auto org = makeScheme(spec, shared.config());
        MemoryTraceSource cursor = shared.source();
        SimEngine engine(shared.config(), cursor, *org,
                         &shared.oracle());
        engine.warmUp(warm);
        engine.measure(cut);
        engine.save(s);
    }
    auto org = makeScheme(spec, shared.config());
    MemoryTraceSource cursor = shared.source();
    SimEngine engine(shared.config(), cursor, *org,
                     &shared.oracle());
    Deserializer d(s.bytes());
    engine.load(d);
    d.finish();
    engine.measure(measured - cut);
    return engine.finish();
}

std::vector<std::uint8_t>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path,
         const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

} // namespace

TEST(CheckpointRoundTrip, EveryPresetBitIdenticalAtRandomInstants)
{
    const SharedWorkload &shared = workload();
    const std::uint64_t measured =
        shared.instructions() - warmupOf(shared);
    ASSERT_GT(measured, 2u);

    // Seeded, so failures replay; distinct per-preset instants, so
    // one lucky cut cannot mask a phase-dependent bug.
    std::mt19937_64 rng(0xAC1CAC1Cull);
    for (const SchemeSpec &spec : allSchemes()) {
        const SimResult whole = shared.run(spec);
        const std::uint64_t cut = 1 + rng() % (measured - 1);
        const SimResult resumed =
            runWithCheckpoint(shared, spec, cut);
        EXPECT_EQ(golden(whole), golden(resumed))
            << spec.toString() << " diverged after resuming at "
            << cut << " measured instructions";
    }
}

TEST(CheckpointRoundTrip, ChunkedCheckpointsComposeAcrossManyCuts)
{
    // Several checkpoints in one run (the --checkpoint-every loop):
    // save/load at every chunk boundary, each into a fresh engine.
    const SharedWorkload &shared = workload();
    const SchemeSpec spec = parseScheme("acic");
    const std::uint64_t warm = warmupOf(shared);
    const std::uint64_t measured = shared.instructions() - warm;
    const SimResult whole = shared.run(spec);

    const std::uint64_t chunk = measured / 5 + 1;
    auto org = makeScheme(spec, shared.config());
    MemoryTraceSource cursor = shared.source();
    auto engine = std::make_unique<SimEngine>(
        shared.config(), cursor, *org, &shared.oracle());
    engine->warmUp(warm);
    std::uint64_t done = 0;
    while (done < measured) {
        const std::uint64_t step = std::min(chunk, measured - done);
        engine->measure(step);
        done += step;
        Serializer s;
        engine->save(s);
        engine.reset(); // before its org and cursor are replaced
        org = makeScheme(spec, shared.config());
        cursor = shared.source();
        engine = std::make_unique<SimEngine>(
            shared.config(), cursor, *org, &shared.oracle());
        Deserializer d(s.bytes());
        engine->load(d);
        d.finish();
    }
    EXPECT_EQ(golden(whole), golden(engine->finish()));
}

TEST(CheckpointRoundTrip, RunCheckpointedResumesFromInflightFile)
{
    // The driver-facing primitive: interrupt by saving an in-flight
    // file mid-run, then let runCheckpointed() find and finish it.
    const SharedWorkload &shared = workload();
    const SchemeSpec spec = parseScheme("lru");
    const std::string path = "acic_test_inflight.ckpt";
    std::remove(path.c_str());

    const std::uint64_t warm = warmupOf(shared);
    {
        auto org = makeScheme(spec, shared.config());
        MemoryTraceSource cursor = shared.source();
        SimEngine engine(shared.config(), cursor, *org,
                         &shared.oracle());
        engine.warmUp(warm);
        engine.measure(7'321);
        engine.saveCheckpoint(path);
    }
    const SimResult resumed =
        shared.runCheckpointed(spec, path, 10'000);
    EXPECT_EQ(golden(shared.run(spec)), golden(resumed));
    std::remove(path.c_str());
}

TEST(CheckpointContainer, CorruptionAndFormatErrorsAreDistinct)
{
    const SharedWorkload &shared = workload();
    const SchemeSpec spec = parseScheme("lru");
    const std::string path = "acic_test_container.ckpt";
    {
        auto org = makeScheme(spec, shared.config());
        MemoryTraceSource cursor = shared.source();
        SimEngine engine(shared.config(), cursor, *org,
                         &shared.oracle());
        engine.warmUp(warmupOf(shared));
        engine.measure(1'000);
        engine.saveCheckpoint(path);
    }
    const std::vector<std::uint8_t> intact = readAll(path);
    ASSERT_GT(intact.size(), CheckpointFormat::kHeaderBytes);

    const auto expectError = [&](const std::string &what) {
        try {
            readCheckpointFile(path, SimEngine::kCheckpointTag);
            FAIL() << "expected rejection mentioning '" << what
                   << "'";
        } catch (const SerializeError &e) {
            EXPECT_NE(std::string(e.what()).find(what),
                      std::string::npos)
                << "actual diagnostic: " << e.what();
        }
    };

    // Payload bit flip -> CRC failure.
    std::vector<std::uint8_t> bytes = intact;
    bytes[CheckpointFormat::kHeaderBytes + bytes.size() / 2] ^= 0x40;
    writeAll(path, bytes);
    expectError("CRC");

    // Truncation -> declared length no longer matches.
    bytes = intact;
    bytes.resize(bytes.size() - 7);
    writeAll(path, bytes);
    expectError("truncated");

    // Truncation inside the header.
    bytes = intact;
    bytes.resize(CheckpointFormat::kHeaderBytes / 2);
    writeAll(path, bytes);
    expectError("truncated");

    // Foreign magic.
    bytes = intact;
    bytes[0] = 'Z';
    writeAll(path, bytes);
    expectError("bad magic");

    // Unsupported container version (magic is 4 bytes, then u16).
    bytes = intact;
    bytes[4] = 0xEE;
    writeAll(path, bytes);
    expectError("unsupported format version");

    // Wrong payload tag: an engine snapshot is not a cell record.
    writeAll(path, intact);
    try {
        readCheckpointFile(path, "CELL");
        FAIL() << "expected a payload-tag rejection";
    } catch (const SerializeError &e) {
        EXPECT_NE(std::string(e.what()).find("payload tag"),
                  std::string::npos);
    }

    // And the intact bytes still load (the harness itself is sound).
    writeAll(path, intact);
    EXPECT_NO_THROW(
        readCheckpointFile(path, SimEngine::kCheckpointTag));
    std::remove(path.c_str());
}

TEST(CheckpointIdentity, RefusesForeignWorkloadAndScheme)
{
    const SharedWorkload &shared = workload();
    const SchemeSpec lru = parseScheme("lru");
    Serializer s;
    {
        auto org = makeScheme(lru, shared.config());
        MemoryTraceSource cursor = shared.source();
        SimEngine engine(shared.config(), cursor, *org,
                         &shared.oracle());
        engine.warmUp(warmupOf(shared));
        engine.measure(500);
        engine.save(s);
    }

    // Same scheme, different workload.
    WorkloadParams other = Workloads::byName("tpcc");
    other.instructions = 50'000;
    const SharedWorkload foreign(other);
    {
        auto org = makeScheme(lru, foreign.config());
        MemoryTraceSource cursor = foreign.source();
        SimEngine engine(foreign.config(), cursor, *org,
                         &foreign.oracle());
        Deserializer d(s.bytes());
        EXPECT_THROW(engine.load(d), SerializeError);
    }

    // Same workload, different scheme.
    {
        auto org = makeScheme(parseScheme("srrip"), shared.config());
        MemoryTraceSource cursor = shared.source();
        SimEngine engine(shared.config(), cursor, *org,
                         &shared.oracle());
        Deserializer d(s.bytes());
        EXPECT_THROW(engine.load(d), SerializeError);
    }
}

namespace {

/** Two workloads x two schemes at ctest-friendly length. */
ExperimentSpec
smallMatrix()
{
    WorkloadParams a = Workloads::byName("web_search");
    a.instructions = 40'000;
    WorkloadParams b = Workloads::byName("tpcc");
    b.instructions = 40'000;
    ExperimentSpec spec;
    spec.workloads = {a, b};
    spec.schemes = parseSchemeList("lru,acic");
    spec.threads = 2;
    return spec;
}

std::string
goldenCells(const std::vector<CellResult> &cells)
{
    std::ostringstream out;
    for (const CellResult &cell : cells) {
        out << "cell " << cell.workloadIndex << ' '
            << cell.schemeIndex << ' ' << cell.done << '\n';
        writeGoldenDump(out, cell.result);
    }
    return out.str();
}

} // namespace

TEST(CheckpointDriver, RerunPreloadsEveryCompletedCell)
{
    const std::string dir = "acic_test_ckpt_dir";
    std::filesystem::remove_all(dir);

    ExperimentSpec spec = smallMatrix();
    spec.checkpointDir = dir;
    spec.checkpointEvery = 10'000;
    const auto first = ExperimentDriver(spec).run();
    ASSERT_EQ(first.size(), 4u);
    for (const CellResult &cell : first) {
        EXPECT_TRUE(cell.done);
        EXPECT_TRUE(std::filesystem::exists(
            dir + "/cells/cell_" +
            std::to_string(cell.workloadIndex) + "_" +
            std::to_string(cell.schemeIndex) + ".bin"));
    }
    // In-flight snapshots are cleaned up after each cell completes.
    EXPECT_TRUE(std::filesystem::is_empty(dir + "/inflight"));

    // The rerun must preload — observer fires once per cell before
    // any simulation — and reproduce the results bit-for-bit.
    std::size_t observed = 0;
    const auto second =
        ExperimentDriver(spec).run([&](const CellResult &) {
            ++observed;
        });
    EXPECT_EQ(observed, 4u);
    EXPECT_EQ(goldenCells(first), goldenCells(second));

    // Checkpointed execution itself must not perturb results.
    const auto plain = ExperimentDriver(smallMatrix()).run();
    EXPECT_EQ(goldenCells(plain), goldenCells(first));
    std::filesystem::remove_all(dir);
}

TEST(CheckpointDriver, ManifestRejectsDifferentSweep)
{
    const std::string dir = "acic_test_ckpt_manifest";
    std::filesystem::remove_all(dir);

    ExperimentSpec spec = smallMatrix();
    spec.checkpointDir = dir;
    ExperimentDriver(spec).run();

    ExperimentSpec other = smallMatrix();
    other.schemes = parseSchemeList("lru,srrip");
    other.checkpointDir = dir;
    ExperimentDriver driver(other);
    EXPECT_THROW(driver.run(), SerializeError);
    std::filesystem::remove_all(dir);
}

TEST(CheckpointDriver, CorruptCellFileIsRejectedNotResimulated)
{
    const std::string dir = "acic_test_ckpt_corrupt";
    std::filesystem::remove_all(dir);

    ExperimentSpec spec = smallMatrix();
    spec.checkpointDir = dir;
    ExperimentDriver(spec).run();

    const std::string victim = dir + "/cells/cell_0_1.bin";
    std::vector<std::uint8_t> bytes = readAll(victim);
    ASSERT_GT(bytes.size(), CheckpointFormat::kHeaderBytes);
    bytes[bytes.size() - 3] ^= 0x01;
    writeAll(victim, bytes);

    ExperimentDriver driver(spec);
    try {
        driver.run();
        FAIL() << "corrupt completed-cell file must be rejected";
    } catch (const SerializeError &e) {
        EXPECT_NE(std::string(e.what()).find("CRC"),
                  std::string::npos)
            << "actual diagnostic: " << e.what();
    }
    std::filesystem::remove_all(dir);
}

TEST(ShardedDriver, ShardsPartitionAndReproduceTheMonolithicRun)
{
    const auto whole = ExperimentDriver(smallMatrix()).run();
    ASSERT_EQ(whole.size(), 4u);

    std::vector<bool> covered(whole.size(), false);
    for (unsigned shard = 0; shard < 3; ++shard) {
        ExperimentSpec spec = smallMatrix();
        spec.shardIndex = shard;
        spec.shardCount = 3;
        const auto part = ExperimentDriver(spec).run();
        ASSERT_EQ(part.size(), whole.size());
        for (std::size_t i = 0; i < part.size(); ++i) {
            if (!part[i].done)
                continue;
            EXPECT_FALSE(covered[i])
                << "cell " << i << " ran on two shards";
            covered[i] = true;
            EXPECT_TRUE(spec.ownsCell(part[i].workloadIndex,
                                      part[i].schemeIndex));
            EXPECT_EQ(golden(whole[i].result),
                      golden(part[i].result))
                << "cell " << i << " diverged on shard " << shard;
        }
    }
    for (std::size_t i = 0; i < covered.size(); ++i)
        EXPECT_TRUE(covered[i]) << "cell " << i << " ran nowhere";
}

TEST(ShardedDriver, EmittersSkipUnownedCells)
{
    ExperimentSpec spec = smallMatrix();
    spec.shardIndex = 1;
    spec.shardCount = 2;
    const auto cells = ExperimentDriver(spec).run();

    const std::vector<ResultRow> rows = resultRows(spec, cells);
    ASSERT_EQ(rows.size(), 2u); // cells 1 and 3 of 4
    std::ostringstream csv;
    writeCsvRows(csv, rows);
    // Header plus exactly one line per owned cell.
    std::size_t lines = 0;
    for (const char c : csv.str())
        lines += c == '\n';
    EXPECT_EQ(lines, 3u);
}

TEST(CheckpointSimResult, SaveLoadRoundTripsEveryField)
{
    const SharedWorkload &shared = workload();
    const SimResult a = shared.run(parseScheme("acic"));
    Serializer s;
    a.save(s);
    SimResult b;
    Deserializer d(s.bytes());
    b.load(d);
    d.finish();
    EXPECT_EQ(golden(a), golden(b));
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.scheme, b.scheme);
}
