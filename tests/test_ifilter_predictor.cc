/**
 * @file
 * Tests of the i-Filter (fully-associative LRU buffer) and the
 * two-level admission predictor: history shift semantics, pattern
 * learning, the 2-cycle parallel update pipeline vs. instant updates,
 * PT queue overflow, ablation variants, and Table I storage.
 */

#include <gtest/gtest.h>

#include "core/admission_predictor.hh"
#include "core/ifilter.hh"

using namespace acic;

namespace {

CacheAccess
access(BlockAddr blk, std::uint64_t next_use = kNeverAgain)
{
    CacheAccess a;
    a.blk = blk;
    a.pc = 0x400000 + blk * 64;
    a.nextUse = next_use;
    return a;
}

} // namespace

TEST(IFilter, InsertLookupAndCapacity)
{
    IFilter filter(4);
    EXPECT_EQ(filter.entryCount(), 4u);
    for (BlockAddr b = 0; b < 4; ++b)
        EXPECT_FALSE(filter.insert(access(b)).has_value());
    EXPECT_EQ(filter.occupancy(), 4u);
    for (BlockAddr b = 0; b < 4; ++b)
        EXPECT_TRUE(filter.lookup(access(b)));
}

TEST(IFilter, EvictsLruSlot)
{
    IFilter filter(4);
    for (BlockAddr b = 0; b < 4; ++b)
        filter.insert(access(b));
    // Touch 0..2; 3 becomes LRU.
    for (BlockAddr b = 0; b < 3; ++b)
        filter.lookup(access(b));
    const auto evicted = filter.insert(access(10));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->blk, 3u);
}

TEST(IFilter, DuplicateInsertSuppressed)
{
    IFilter filter(2);
    filter.insert(access(1));
    const auto evicted = filter.insert(access(1));
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(filter.occupancy(), 1u);
}

TEST(IFilter, InvalidateFreesSlot)
{
    IFilter filter(2);
    filter.insert(access(1));
    EXPECT_TRUE(filter.invalidate(1));
    EXPECT_FALSE(filter.contains(1));
    EXPECT_FALSE(filter.invalidate(1));
}

TEST(IFilter, VictimCarriesOracleAnnotations)
{
    IFilter filter(1);
    filter.insert(access(5, 1234));
    const auto evicted = filter.insert(access(6));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->blk, 5u);
    EXPECT_EQ(evicted->nextUse, 1234u);
}

TEST(IFilter, StorageMatchesTableI)
{
    const IFilter filter(16);
    // 16 x (63 metadata bits + 64 B block) = 1.123 KB.
    EXPECT_NEAR(static_cast<double>(filter.storageBits()) / 8.0 /
                    1024.0,
                1.123, 0.01);
}

TEST(Predictor, ColdPredictorBypasses)
{
    AdmissionPredictor predictor;
    EXPECT_FALSE(predictor.predict(0x123));
}

TEST(Predictor, LearnsToAdmitConsistentWinner)
{
    PredictorConfig config;
    config.instantUpdate = true;
    AdmissionPredictor predictor(config);
    for (int i = 0; i < 64; ++i)
        predictor.train(0x42, true, i);
    EXPECT_TRUE(predictor.predict(0x42));
}

TEST(Predictor, LearnsToBypassConsistentLoser)
{
    PredictorConfig config;
    config.instantUpdate = true;
    AdmissionPredictor predictor(config);
    // Drive up first, then down; must flip back to bypass.
    for (int i = 0; i < 64; ++i)
        predictor.train(0x42, true, i);
    for (int i = 0; i < 64; ++i)
        predictor.train(0x42, false, 64 + i);
    EXPECT_FALSE(predictor.predict(0x42));
}

TEST(Predictor, PatternsSeparateTags)
{
    PredictorConfig config;
    config.instantUpdate = true;
    AdmissionPredictor predictor(config);
    // Tag A always wins; tag B always loses. Their history patterns
    // index different PT entries, so decisions diverge.
    for (int i = 0; i < 64; ++i) {
        predictor.train(0x111, true, i);
        predictor.train(0x7ee, false, i);
    }
    EXPECT_TRUE(predictor.predict(0x111));
    EXPECT_FALSE(predictor.predict(0x7ee));
}

TEST(Predictor, ParallelUpdateIsDelayed)
{
    AdmissionPredictor predictor; // parallel (pipelined) updates
    const auto pt_sum = [&] {
        std::uint64_t sum = 0;
        for (const auto &ctr : predictor.patternTable())
            sum += ctr.value();
        return sum;
    };
    const std::uint64_t before = pt_sum();
    predictor.train(0x42, true, 0);
    // Not yet applied: the update sits in the 2-cycle pipeline.
    EXPECT_EQ(pt_sum(), before);
    for (Cycle c = 0; c < 8; ++c)
        predictor.tick(c);
    EXPECT_EQ(pt_sum(), before + 1);
}

TEST(Predictor, SustainedTrainingCrossesThresholdAfterDrain)
{
    AdmissionPredictor predictor;
    // One update per cycle with ticking, as the simulator does.
    Cycle now = 0;
    for (int i = 0; i < 200; ++i) {
        predictor.train(0x42, true, now);
        predictor.tick(now);
        ++now;
    }
    for (; now < 300; ++now)
        predictor.tick(now);
    EXPECT_TRUE(predictor.predict(0x42));
}

TEST(Predictor, QueueOverflowDropsUpdates)
{
    PredictorConfig config;
    config.updateQueueSlots = 2;
    AdmissionPredictor predictor(config);
    for (int i = 0; i < 32; ++i)
        predictor.train(0x42, true, 0);
    EXPECT_GT(predictor.droppedUpdates(), 0u);
}

TEST(Predictor, FlushAppliesPending)
{
    AdmissionPredictor predictor;
    const auto pt_sum = [&] {
        std::uint64_t sum = 0;
        for (const auto &ctr : predictor.patternTable())
            sum += ctr.value();
        return sum;
    };
    const std::uint64_t before = pt_sum();
    for (int i = 0; i < 5; ++i)
        predictor.train(static_cast<std::uint32_t>(i * 7 + 1), true,
                        0);
    predictor.flush();
    EXPECT_GT(pt_sum(), before);
}

TEST(Predictor, GlobalHistoryVariantShares)
{
    PredictorConfig config;
    config.kind = PredictorKind::GlobalHistory;
    config.instantUpdate = true;
    AdmissionPredictor predictor(config);
    // All tags share one history register: training one tag affects
    // another's prediction path.
    for (int i = 0; i < 64; ++i)
        predictor.train(0x1, true, i);
    EXPECT_TRUE(predictor.predict(0x2));
}

TEST(Predictor, BimodalVariantIgnoresHistory)
{
    PredictorConfig config;
    config.kind = PredictorKind::Bimodal;
    config.instantUpdate = true;
    AdmissionPredictor predictor(config);
    // Alternating outcomes keep a bimodal counter near the middle;
    // it must not oscillate to full confidence.
    for (int i = 0; i < 64; ++i)
        predictor.train(0x42, (i % 2) == 0, i);
    // Two-level would separate the alternation; bimodal cannot.
    EXPECT_EQ(predictor.name(), "bimodal");
}

TEST(Predictor, StorageMatchesTableI)
{
    const AdmissionPredictor predictor;
    // HRT 1024x4 = 0.5 KB; PT 16x5 = 10 B; queues 16x10x5 = 100 B.
    const std::uint64_t bits = predictor.storageBits();
    EXPECT_EQ(bits, 1024u * 4 + 16 * 5 + 16 * 10 * 5);
}

class PredictorConfigSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(PredictorConfigSweep, TrainsUnderAnyGeometry)
{
    const auto [history_bits, counter_bits] = GetParam();
    PredictorConfig config;
    config.historyBits = history_bits;
    config.counterBits = counter_bits;
    config.instantUpdate = true;
    AdmissionPredictor predictor(config);
    for (int i = 0; i < 256; ++i)
        predictor.train(0x55, true, i);
    EXPECT_TRUE(predictor.predict(0x55));
    for (int i = 0; i < 256; ++i)
        predictor.train(0x55, false, i);
    EXPECT_FALSE(predictor.predict(0x55));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PredictorConfigSweep,
    ::testing::Combine(::testing::Values(2u, 4u, 8u, 10u),
                       ::testing::Values(2u, 5u, 8u)));
