/**
 * @file
 * Tests of the generic set-associative tag store: hit/miss, fills and
 * evictions, LRU ordering, invalidate, probe purity, non-power-of-two
 * associativities (36 KB/9-way, 40 KB/10-way), and oracle next-use
 * bookkeeping on lines.
 */

#include <gtest/gtest.h>

#include "cache/lru.hh"
#include "cache/set_assoc.hh"

using namespace acic;

namespace {

CacheAccess
access(BlockAddr blk, Addr pc = 0x1000,
       std::uint64_t next_use = kNeverAgain)
{
    CacheAccess a;
    a.blk = blk;
    a.pc = pc;
    a.nextUse = next_use;
    return a;
}

/** Block mapping to a given set of a 64-set cache. */
BlockAddr
blkInSet(std::uint32_t set, std::uint32_t i)
{
    return set + 64ull * (i + 1);
}

} // namespace

TEST(SetAssoc, MissThenHitAfterFill)
{
    SetAssocCache cache(64, 8, std::make_unique<LruPolicy>());
    EXPECT_FALSE(cache.lookup(access(100)).has_value());
    cache.fill(access(100));
    EXPECT_TRUE(cache.lookup(access(100)).has_value());
}

TEST(SetAssoc, CapacityAndGeometry)
{
    const auto cache = SetAssocCache::bySize(
        32 * 1024, 8, std::make_unique<LruPolicy>());
    EXPECT_EQ(cache.numSets(), 64u);
    EXPECT_EQ(cache.numWays(), 8u);
    EXPECT_EQ(cache.capacityBytes(), 32u * 1024u);
}

TEST(SetAssoc, NonPowerOfTwoWays)
{
    const auto c36 = SetAssocCache::bySize(
        36 * 1024, 9, std::make_unique<LruPolicy>());
    EXPECT_EQ(c36.numSets(), 64u);
    const auto c40 = SetAssocCache::bySize(
        40 * 1024, 10, std::make_unique<LruPolicy>());
    EXPECT_EQ(c40.numSets(), 64u);
}

TEST(SetAssoc, FillsUseInvalidWaysFirst)
{
    SetAssocCache cache(4, 4, std::make_unique<LruPolicy>());
    for (std::uint32_t i = 0; i < 4; ++i) {
        const auto result = cache.fill(access(blkInSet(1, i) * 4 + 1));
        EXPECT_FALSE(result.evicted);
    }
}

TEST(SetAssoc, LruEvictionOrder)
{
    SetAssocCache cache(64, 4, std::make_unique<LruPolicy>());
    // Fill set 5 with 4 blocks, touch them in a known order.
    for (std::uint32_t i = 0; i < 4; ++i)
        cache.fill(access(blkInSet(5, i)));
    // Touch 0,1,2 so 3 is LRU.
    for (std::uint32_t i = 0; i < 3; ++i)
        cache.lookup(access(blkInSet(5, i)));
    const auto result = cache.fill(access(blkInSet(5, 9)));
    ASSERT_TRUE(result.evicted);
    EXPECT_EQ(result.victim.blk, blkInSet(5, 3));
}

TEST(SetAssoc, ProbeDoesNotDisturbLru)
{
    SetAssocCache cache(64, 2, std::make_unique<LruPolicy>());
    cache.fill(access(blkInSet(0, 0)));
    cache.fill(access(blkInSet(0, 1)));
    // Probe the LRU block many times; it must still be evicted.
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(cache.probe(blkInSet(0, 0)));
    const auto result = cache.fill(access(blkInSet(0, 2)));
    ASSERT_TRUE(result.evicted);
    EXPECT_EQ(result.victim.blk, blkInSet(0, 0));
}

TEST(SetAssoc, FillIsIdempotentForPresentBlock)
{
    SetAssocCache cache(4, 2, std::make_unique<LruPolicy>());
    cache.fill(access(8));
    const auto result = cache.fill(access(8));
    EXPECT_FALSE(result.evicted);
    EXPECT_EQ(cache.validLines(), 1u);
}

TEST(SetAssoc, InvalidateRemovesBlock)
{
    SetAssocCache cache(4, 2, std::make_unique<LruPolicy>());
    cache.fill(access(8));
    EXPECT_TRUE(cache.invalidate(8));
    EXPECT_FALSE(cache.probe(8));
    EXPECT_FALSE(cache.invalidate(8));
}

TEST(SetAssoc, VictimWayReportsContenderWithoutEviction)
{
    SetAssocCache cache(64, 2, std::make_unique<LruPolicy>());
    cache.fill(access(blkInSet(3, 0)));
    cache.fill(access(blkInSet(3, 1)));
    CacheAccess incoming = access(blkInSet(3, 2));
    const std::uint32_t way = cache.victimWay(incoming);
    const CacheLine &line = cache.lineAt(3, way);
    EXPECT_EQ(line.blk, blkInSet(3, 0)); // LRU of the set
    // No state change: both blocks still present.
    EXPECT_TRUE(cache.probe(blkInSet(3, 0)));
    EXPECT_TRUE(cache.probe(blkInSet(3, 1)));
}

TEST(SetAssoc, LineTracksNextUseOnTouch)
{
    SetAssocCache cache(4, 2, std::make_unique<LruPolicy>());
    cache.fill(access(8, 0x1000, 55));
    const auto way = cache.probeWay(8);
    ASSERT_TRUE(way.has_value());
    EXPECT_EQ(cache.lineAt(cache.setOf(8), *way).nextUse, 55u);
    cache.lookup(access(8, 0x1000, 99));
    EXPECT_EQ(cache.lineAt(cache.setOf(8), *way).nextUse, 99u);
}

TEST(SetAssoc, PrefetchMarkClearedOnDemandHit)
{
    SetAssocCache cache(4, 2, std::make_unique<LruPolicy>());
    CacheAccess pf = access(8);
    pf.isPrefetch = true;
    cache.fill(pf);
    const auto way = cache.probeWay(8);
    EXPECT_TRUE(cache.lineAt(cache.setOf(8), *way).prefetched);
    cache.lookup(access(8));
    EXPECT_FALSE(cache.lineAt(cache.setOf(8), *way).prefetched);
}

TEST(LruPolicy, RankReflectsRecency)
{
    SetAssocCache cache(64, 4, std::make_unique<LruPolicy>());
    auto &lru = static_cast<LruPolicy &>(cache.policy());
    for (std::uint32_t i = 0; i < 4; ++i)
        cache.fill(access(blkInSet(0, i)));
    // Most recent fill is way 3 -> rank ways-1... rank 0 is MRU.
    EXPECT_EQ(lru.rankOf(0, 3), 0u);
    EXPECT_EQ(lru.rankOf(0, 0), 3u);
    EXPECT_EQ(lru.lruWay(0), 0u);
    cache.lookup(access(blkInSet(0, 0)));
    EXPECT_EQ(lru.lruWay(0), 1u);
}

TEST(RandomPolicy, VictimInRange)
{
    SetAssocCache cache(4, 8, std::make_unique<RandomPolicy>());
    for (std::uint32_t i = 0; i < 64; ++i)
        cache.fill(access(4ull * i + 1));
    CacheAccess incoming = access(999 * 4 + 1);
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(cache.victimWay(incoming), 8u);
}
