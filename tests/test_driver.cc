/**
 * @file
 * Tests of the experiment-driver subsystem: thread-pool draining,
 * SharedWorkload equivalence with the serial WorkloadContext path,
 * thread-count invariance of driver results, trace-dir replay, the
 * CSV/JSON emitters, StatSet ostream dumping, and the hardened
 * ACIC_TRACE_LEN parsing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "driver/emitters.hh"
#include "driver/experiment.hh"
#include "driver/thread_pool.hh"
#include "trace/io.hh"

using namespace acic;

namespace {

ExperimentSpec
smallSpec(unsigned threads)
{
    ExperimentSpec spec;
    spec.workloads = {Workloads::byName("web_search"),
                      Workloads::byName("media_streaming"),
                      Workloads::byName("tpcc")};
    spec.schemes = parseSchemeList("lru,srrip,acic,opt");
    spec.instructions = 40'000;
    spec.threads = threads;
    return spec;
}

void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.scheme, b.scheme);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.demandAccesses, b.demandAccesses);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.btbMisses, b.btbMisses);
    EXPECT_EQ(a.prefetchesIssued, b.prefetchesIssued);
    EXPECT_EQ(a.latePrefetches, b.latePrefetches);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.l3Accesses, b.l3Accesses);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
    EXPECT_EQ(a.orgStats.raw(), b.orgStats.raw());
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

std::size_t
countCommas(const std::string &line)
{
    std::size_t n = 0;
    for (const char c : line)
        n += c == ',' ? 1 : 0;
    return n;
}

} // namespace

TEST(ThreadPool, DrainsTransitiveTaskGraph)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &count] {
            ++count;
            // Tasks submitted from worker threads must also drain
            // before wait() returns.
            pool.submit([&count] { ++count; });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 16);
    // The pool stays usable after a wait().
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 17);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.threads(), 1u);
}

TEST(SharedWorkload, MatchesSerialWorkloadContext)
{
    auto params = Workloads::byName("web_search");
    params.instructions = 50'000;

    WorkloadContext serial(params);
    SharedWorkload shared(params);
    for (const char *s : {"lru", "acic", "opt"})
        expectSameResult(serial.run(s), shared.run(s));
}

TEST(SharedWorkload, ConcurrentRunsAreIndependent)
{
    auto params = Workloads::byName("tpcc");
    params.instructions = 40'000;
    const SharedWorkload shared(params);
    const SimResult expected = shared.run("acic");

    std::vector<SimResult> results(8);
    {
        ThreadPool pool(4);
        for (auto &slot : results)
            pool.submit(
                [&shared, &slot] { slot = shared.run("acic"); });
        pool.wait();
    }
    for (const auto &r : results)
        expectSameResult(expected, r);
}

TEST(Driver, ResultsIdenticalAcrossThreadCounts)
{
    ExperimentDriver serial(smallSpec(1));
    ExperimentDriver parallel(smallSpec(4));
    const auto a = serial.run();
    const auto b = parallel.run();
    ASSERT_EQ(a.size(), 12u);
    ASSERT_EQ(b.size(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].workloadIndex, b[i].workloadIndex);
        EXPECT_EQ(a[i].schemeIndex, b[i].schemeIndex);
        expectSameResult(a[i].result, b[i].result);
    }
}

TEST(Driver, ObserverSeesEveryCellOnce)
{
    ExperimentDriver driver(smallSpec(4));
    std::vector<int> seen(12, 0);
    const auto cells = driver.run([&](const CellResult &cell) {
        ++seen[cell.workloadIndex * 4 + cell.schemeIndex];
    });
    for (const int n : seen)
        EXPECT_EQ(n, 1);
    // Returned cells are workload-major regardless of completion
    // order.
    for (std::size_t i = 0; i < cells.size(); ++i) {
        EXPECT_EQ(cells[i].workloadIndex, i / 4);
        EXPECT_EQ(cells[i].schemeIndex, i % 4);
    }
}

TEST(Driver, TraceDirReplayMatchesSynthetic)
{
    auto spec = smallSpec(2);
    spec.workloads.resize(2);

    // Record the two workloads at the spec's instruction count.
    const std::string dir = ".";
    std::vector<std::string> paths;
    for (const auto &entry : spec.workloads) {
        auto p = entry.params;
        p.instructions = spec.instructions;
        SyntheticWorkload synth(p);
        const std::string path =
            dir + "/" + p.name + TraceFormat::suffix();
        recordTrace(synth, path);
        paths.push_back(path);
    }

    ExperimentDriver synthetic(spec);
    auto from_synth = synthetic.run();

    auto disk_spec = spec;
    disk_spec.traceDir = dir;
    ExperimentDriver replay(disk_spec);
    auto from_disk = replay.run();

    ASSERT_EQ(from_synth.size(), from_disk.size());
    for (std::size_t i = 0; i < from_synth.size(); ++i)
        expectSameResult(from_synth[i].result, from_disk[i].result);
    for (const auto &path : paths)
        std::remove(path.c_str());
}

TEST(Driver, ExplicitInstructionsBeatEnvOverride)
{
    ExperimentSpec spec;
    spec.workloads = {Workloads::byName("tpcc")};
    spec.schemes = {parseScheme("lru")};
    spec.threads = 1;

    // Explicit spec override outranks the env var...
    ::setenv("ACIC_TRACE_LEN", "100000", 1);
    spec.instructions = 30'000;
    const auto explicit_cells = ExperimentDriver(spec).run();
    // ...but the env var still applies when nothing is explicit.
    spec.instructions = 0;
    ::setenv("ACIC_TRACE_LEN", "20000", 1);
    const auto env_cells = ExperimentDriver(spec).run();
    ::unsetenv("ACIC_TRACE_LEN");

    // SimResult counts post-warmup instructions (90% of the trace).
    EXPECT_EQ(explicit_cells[0].result.instructions, 27'000u);
    EXPECT_EQ(env_cells[0].result.instructions, 18'000u);
}

TEST(Emitters, CsvIsParseable)
{
    auto spec = smallSpec(2);
    spec.workloads.resize(2);
    spec.schemes = parseSchemeList("lru,acic");
    ExperimentDriver driver(spec);
    const auto cells = driver.run();

    std::ostringstream out;
    writeResultsCsv(out, driver.spec(), cells);
    const auto lines = splitLines(out.str());
    ASSERT_EQ(lines.size(), 1u + cells.size());
    const std::size_t columns = countCommas(lines[0]) + 1;
    EXPECT_EQ(columns, 16u);
    for (std::size_t i = 1; i < lines.size(); ++i)
        EXPECT_EQ(countCommas(lines[i]) + 1, columns)
            << "row " << i << ": " << lines[i];
    EXPECT_EQ(lines[1].substr(0, lines[1].find(',')),
              spec.workloads[0].name());
}

TEST(Emitters, JsonIsStructurallyValid)
{
    auto spec = smallSpec(2);
    spec.workloads.resize(1);
    spec.schemes = parseSchemeList("lru,acic");
    ExperimentDriver driver(spec);
    const auto cells = driver.run();

    std::ostringstream out;
    writeResultsJson(out, driver.spec(), cells);
    const std::string json = out.str();

    // Balanced braces/brackets and no dangling comma before a
    // closing token — the structural failures a hand-rolled emitter
    // can make. (Emitted strings contain no braces.)
    int braces = 0, brackets = 0;
    char prev_significant = '\0';
    for (const char c : json) {
        if (c == '{')
            ++braces;
        if (c == '}') {
            --braces;
            EXPECT_NE(prev_significant, ',');
        }
        if (c == '[')
            ++brackets;
        if (c == ']') {
            --brackets;
            EXPECT_NE(prev_significant, ',');
        }
        if (!std::isspace(static_cast<unsigned char>(c)))
            prev_significant = c;
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_NE(json.find("\"format\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"cells\": ["), std::string::npos);
    EXPECT_NE(json.find("\"org_stats\": {"), std::string::npos);
    EXPECT_NE(json.find("\"web_search\""), std::string::npos);
}

TEST(Emitters, CsvQuotesAwkwardWorkloadNames)
{
    // Trace-file catalog entries are named after arbitrary file
    // stems, so a comma in a name must not corrupt the column
    // count: the field gets RFC 4180 quoting.
    ExperimentSpec spec;
    auto params = Workloads::byName("tpcc");
    params.name = "we,ird \"name\"";
    spec.workloads = {params};
    spec.schemes = {parseScheme("lru")};
    spec.instructions = 20'000;
    spec.threads = 1;
    ExperimentDriver driver(spec);
    const auto cells = driver.run();

    std::ostringstream out;
    writeResultsCsv(out, driver.spec(), cells);
    const auto lines = splitLines(out.str());
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[1].substr(0, 18), "\"we,ird \"\"name\"\"\",");
    // Commas inside the quoted field plus the 15 real separators.
    EXPECT_EQ(countCommas(lines[1]), countCommas(lines[0]) + 1);
}

TEST(Emitters, JsonEscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Stats, DumpWritesToProvidedStream)
{
    StatSet stats;
    stats.bump("beta", 2);
    stats.set("alpha", 7);
    std::ostringstream out;
    stats.dump(out, "pfx.");
    EXPECT_EQ(out.str(), "pfx.alpha 7\npfx.beta 2\n");
}

TEST(Runner, EnvOverrideRejectsGarbage)
{
    auto params = Workloads::byName("tpcc");
    const std::uint64_t preset = params.instructions;

    for (const char *bad : {"abc", "12x", "0", "-5", ""}) {
        ::setenv("ACIC_TRACE_LEN", bad, 1);
        EXPECT_EQ(WorkloadContext::withEnvOverrides(params)
                      .instructions,
                  preset)
            << "value '" << bad << "' must be rejected";
    }
    ::setenv("ACIC_TRACE_LEN", "2345", 1);
    EXPECT_EQ(WorkloadContext::withEnvOverrides(params).instructions,
              2'345u);
    ::unsetenv("ACIC_TRACE_LEN");
}
