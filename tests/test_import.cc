/**
 * @file
 * Tests of the trace-ingestion pipeline and the workload catalog:
 * gzip-aware framing, ChampSim/QEMU golden-fixture round-trips
 * (imported `.acictrace` replays bit-identically), format
 * auto-detection, malformed-input rejection, the TraceWriter
 * non-seekable-output guard, trace statistics, and the
 * WorkloadCatalog registry (builtin presets, trace-dir overlay,
 * group resolution, driver integration of trace-file entries).
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/experiment.hh"
#include "trace/catalog.hh"
#include "trace/import/champsim.hh"
#include "trace/import/importer.hh"
#include "trace/import/qemu.hh"
#include "trace/io.hh"
#include "trace/stats.hh"
#include "trace/synthetic.hh"

using namespace acic;

namespace {

/** Unique-ish temp path per test, removed on destruction. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name) : path_(name)
    {
        std::remove(path_.c_str());
    }
    ~TempPath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

std::vector<TraceInst>
drain(TraceSource &src)
{
    std::vector<TraceInst> out;
    TraceInst inst;
    while (src.next(inst))
        out.push_back(inst);
    return out;
}

void
expectSameStream(const std::vector<TraceInst> &a,
                 const std::vector<TraceInst> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].pc, b[i].pc) << "record " << i;
        ASSERT_EQ(a[i].nextPc, b[i].nextPc) << "record " << i;
        ASSERT_EQ(static_cast<int>(a[i].kind),
                  static_cast<int>(b[i].kind))
            << "record " << i;
        ASSERT_EQ(a[i].taken, b[i].taken) << "record " << i;
    }
}

TraceInst
makeInst(Addr pc, Addr next, BranchKind kind, bool taken)
{
    TraceInst inst;
    inst.pc = pc;
    inst.nextPc = next;
    inst.kind = kind;
    inst.taken = taken;
    return inst;
}

/** One 64-byte ChampSim record. */
std::vector<std::uint8_t>
champsimRecord(std::uint64_t ip, bool is_branch, bool taken,
               std::vector<std::uint8_t> dst = {},
               std::vector<std::uint8_t> src = {})
{
    std::vector<std::uint8_t> raw(ChampSimImporter::kRecordBytes, 0);
    for (int i = 0; i < 8; ++i)
        raw[i] = static_cast<std::uint8_t>(ip >> (8 * i));
    raw[8] = is_branch ? 1 : 0;
    raw[9] = taken ? 1 : 0;
    for (std::size_t i = 0; i < dst.size() && i < 2; ++i)
        raw[10 + i] = dst[i];
    for (std::size_t i = 0; i < src.size() && i < 4; ++i)
        raw[12 + i] = src[i];
    return raw;
}

void
writeBytes(const std::string &path,
           const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
}

void
writeText(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::trunc);
    out << text;
    ASSERT_TRUE(out.good());
}

constexpr std::uint8_t kSp = ChampSimImporter::kRegStackPointer;
constexpr std::uint8_t kFlags = ChampSimImporter::kRegFlags;
constexpr std::uint8_t kIp =
    ChampSimImporter::kRegInstructionPointer;

/** The golden ChampSim fixture and the stream it must decode to. */
std::vector<std::uint8_t>
championFixture(std::vector<TraceInst> &expected)
{
    std::vector<std::uint8_t> bytes;
    const auto push = [&](std::vector<std::uint8_t> rec) {
        bytes.insert(bytes.end(), rec.begin(), rec.end());
    };
    // Plain, direct jump, direct call, return, not-taken
    // conditional, plain tail.
    push(champsimRecord(0x1000, false, false));
    push(champsimRecord(0x1004, true, true, {kIp}, {kIp}));
    push(champsimRecord(0x2000, true, true, {kIp, kSp}, {kIp, kSp}));
    push(champsimRecord(0x3000, true, true, {kIp, kSp}, {kSp}));
    push(champsimRecord(0x1008, true, false, {kIp}, {kIp, kFlags}));
    push(champsimRecord(0x100c, false, false));

    expected = {
        makeInst(0x1000, 0x1004, BranchKind::None, false),
        makeInst(0x1004, 0x2000, BranchKind::Direct, true),
        makeInst(0x2000, 0x3000, BranchKind::Call, true),
        makeInst(0x3000, 0x1008, BranchKind::Return, true),
        makeInst(0x1008, 0x100c, BranchKind::Cond, false),
        makeInst(0x100c, 0x1010, BranchKind::None, false),
    };
    return bytes;
}

/** The golden QEMU execlog fixture and its expected stream. */
std::string
qemuExeclogFixture(std::vector<TraceInst> &expected)
{
    const std::string text =
        "# comment line, skipped\n"
        "0, 0x400000, 0xd2800000, \"mov x0, #0\"\n"
        "0, 0x400004, 0x94000003, \"bl #0x400010\"\n"
        "0, 0x400010, 0xd2800001, \"mov x1, #1\"\n"
        "0, 0x400014, 0xd65f03c0, \"ret\"\n"
        "\n"
        "0, 0x400008, 0x14000006, \"b #0x400020\"\n"
        "0, 0x400020, 0x54000040, \"b.eq #0x400028\"\n"
        "0, 0x400024, 0xd503201f, \"nop\"\n";
    expected = {
        makeInst(0x400000, 0x400004, BranchKind::None, false),
        makeInst(0x400004, 0x400010, BranchKind::Call, true),
        makeInst(0x400010, 0x400014, BranchKind::None, false),
        makeInst(0x400014, 0x400008, BranchKind::Return, true),
        makeInst(0x400008, 0x400020, BranchKind::Direct, true),
        makeInst(0x400020, 0x400024, BranchKind::Cond, false),
        makeInst(0x400024, 0x400028, BranchKind::None, false),
    };
    return text;
}

} // namespace

// ----------------------------------------------------------- framing

TEST(Framing, LineFramingHandlesTerminatorsAndFinalLine)
{
    TempPath path("acic_test_lines.txt");
    writeText(path.str(), "alpha\nbeta\r\n\ngamma");
    InputStream in(path.str());
    std::string line;
    ASSERT_TRUE(in.getLine(line));
    EXPECT_EQ(line, "alpha");
    ASSERT_TRUE(in.getLine(line));
    EXPECT_EQ(line, "beta");
    ASSERT_TRUE(in.getLine(line));
    EXPECT_EQ(line, "");
    ASSERT_TRUE(in.getLine(line));
    EXPECT_EQ(line, "gamma"); // unterminated final line
    EXPECT_FALSE(in.getLine(line));
}

TEST(Framing, PeekDoesNotConsume)
{
    TempPath path("acic_test_peek.bin");
    writeBytes(path.str(), {1, 2, 3, 4, 5});
    InputStream in(path.str());
    const std::uint8_t *head = nullptr;
    ASSERT_EQ(in.peek(head, 64), 5u);
    EXPECT_EQ(head[0], 1);
    EXPECT_EQ(head[4], 5);
    std::uint8_t buf[8];
    EXPECT_EQ(in.read(buf, sizeof(buf)), 5u);
    EXPECT_EQ(buf[0], 1);
    EXPECT_EQ(in.consumed(), 5u);
}

TEST(Framing, GzipInputIsTransparent)
{
    if (!gzipSupported())
        GTEST_SKIP() << "built without zlib";
    TempPath plain("acic_test_gz_plain.txt");
    TempPath gz("acic_test_gz.txt.gz");
    writeText(plain.str(), "hello\nworld\n");
    ASSERT_TRUE(gzipFile(plain.str(), gz.str()));

    InputStream in(gz.str());
    EXPECT_TRUE(in.compressed());
    std::string line;
    ASSERT_TRUE(in.getLine(line));
    EXPECT_EQ(line, "hello");
    ASSERT_TRUE(in.getLine(line));
    EXPECT_EQ(line, "world");
    EXPECT_FALSE(in.getLine(line));
}

// --------------------------------------------------------- importers

TEST(ChampSimImport, GoldenFixtureRoundTrips)
{
    TempPath fixture("acic_test_golden.champsim");
    TempPath out("acic_test_golden_champsim.acictrace");
    std::vector<TraceInst> expected;
    writeBytes(fixture.str(), championFixture(expected));

    const ImportSummary summary =
        importTraceFile(fixture.str(), out.str());
    EXPECT_EQ(summary.format, "champsim");
    EXPECT_EQ(summary.instructions, expected.size());
    EXPECT_EQ(summary.name, "acic_test_golden_champsim");

    FileTraceSource trace(out.str());
    EXPECT_EQ(trace.length(), expected.size());
    expectSameStream(expected, drain(trace));
    // Re-iterability: the imported trace replays identically.
    trace.reset();
    expectSameStream(expected, drain(trace));
}

TEST(ChampSimImport, ExplicitFormatAndCustomName)
{
    TempPath fixture("acic_test_named.champsim");
    TempPath out("acic_test_named.acictrace");
    std::vector<TraceInst> expected;
    writeBytes(fixture.str(), championFixture(expected));

    ImportOptions options;
    options.format = "champsim";
    options.name = "my_workload";
    const ImportSummary summary =
        importTraceFile(fixture.str(), out.str(), options);
    EXPECT_EQ(summary.name, "my_workload");
    FileTraceSource trace(out.str());
    EXPECT_EQ(trace.name(), "my_workload");
}

TEST(ChampSimImportDeath, RejectsTruncatedRecord)
{
    TempPath fixture("acic_test_trunc.champsim");
    TempPath out("acic_test_trunc.acictrace");
    std::vector<TraceInst> expected;
    auto bytes = championFixture(expected);
    bytes.resize(bytes.size() - 7); // tear the final record
    writeBytes(fixture.str(), bytes);
    EXPECT_EXIT(importTraceFile(fixture.str(), out.str()),
                ::testing::ExitedWithCode(1), "truncated ChampSim");
}

TEST(QemuImport, ExeclogFixtureRoundTrips)
{
    TempPath fixture("acic_test_execlog.log");
    TempPath out("acic_test_execlog.acictrace");
    std::vector<TraceInst> expected;
    writeText(fixture.str(), qemuExeclogFixture(expected));

    const ImportSummary summary =
        importTraceFile(fixture.str(), out.str());
    EXPECT_EQ(summary.format, "qemu");
    EXPECT_EQ(summary.instructions, expected.size());

    FileTraceSource trace(out.str());
    expectSameStream(expected, drain(trace));
}

TEST(QemuImport, ExecTraceLinesRoundTrip)
{
    TempPath fixture("acic_test_exec.log");
    TempPath out("acic_test_exec.acictrace");
    // -d exec TB lines: pc is the second '/'-component. The second
    // block does not follow the first sequentially, so it becomes a
    // taken Direct branch; the third continues at +4 (kInstBytes).
    writeText(fixture.str(),
              "Trace 0: 0x7f1200 [00000000/0000000000400100/0x11]\n"
              "Trace 0: 0x7f1208 [00000000/0000000000400200/0x11]\n"
              "Trace 0: 0x7f1210 [00000000/0000000000400204/0x11]\n");
    const std::vector<TraceInst> expected = {
        makeInst(0x400100, 0x400200, BranchKind::Direct, true),
        makeInst(0x400200, 0x400204, BranchKind::None, false),
        makeInst(0x400204, 0x400208, BranchKind::None, false),
    };
    const ImportSummary summary =
        importTraceFile(fixture.str(), out.str());
    EXPECT_EQ(summary.format, "qemu");
    FileTraceSource trace(out.str());
    expectSameStream(expected, drain(trace));
}

TEST(QemuImportDeath, RejectsMalformedLine)
{
    TempPath fixture("acic_test_malformed.log");
    TempPath out("acic_test_malformed.acictrace");
    TempPath tmp("acic_test_malformed.acictrace.tmp");
    writeText(fixture.str(),
              "0, 0x400000, 0x0, \"nop\"\n"
              "this is not a qemu log line\n");
    ImportOptions options;
    options.format = "qemu";
    EXPECT_EXIT(importTraceFile(fixture.str(), out.str(), options),
                ::testing::ExitedWithCode(1),
                "malformed QEMU log line 2");
    // A failed import must not leave a partial trace under the real
    // name (it converts into a ".tmp" renamed only on success).
    std::ifstream leftover(out.str());
    EXPECT_FALSE(leftover.good());
}

TEST(QemuImport, ClassifiesMnemonicFamilies)
{
    using K = BranchKind;
    EXPECT_EQ(QemuImporter::classifyMnemonic("bl"), K::Call);
    EXPECT_EQ(QemuImporter::classifyMnemonic("CALL"), K::Call);
    EXPECT_EQ(QemuImporter::classifyMnemonic("jal"), K::Call);
    EXPECT_EQ(QemuImporter::classifyMnemonic("ret"), K::Return);
    EXPECT_EQ(QemuImporter::classifyMnemonic("retq"), K::Return);
    EXPECT_EQ(QemuImporter::classifyMnemonic("jmp"), K::Direct);
    EXPECT_EQ(QemuImporter::classifyMnemonic("b"), K::Direct);
    EXPECT_EQ(QemuImporter::classifyMnemonic("b.ne"), K::Cond);
    EXPECT_EQ(QemuImporter::classifyMnemonic("beq"), K::Cond);
    EXPECT_EQ(QemuImporter::classifyMnemonic("bltu"), K::Cond);
    EXPECT_EQ(QemuImporter::classifyMnemonic("jne"), K::Cond);
    EXPECT_EQ(QemuImporter::classifyMnemonic("cbz"), K::Cond);
    EXPECT_EQ(QemuImporter::classifyMnemonic("mov"), K::None);
    EXPECT_EQ(QemuImporter::classifyMnemonic("add"), K::None);
}

// ----------------------------------------------- detection + native

TEST(ImportDetection, ProbesPickTheRightImporter)
{
    std::vector<TraceInst> expected;
    const auto champ = championFixture(expected);
    const std::string qemu = qemuExeclogFixture(expected);

    const TraceImporter *by_champ = nullptr;
    const TraceImporter *by_qemu = nullptr;
    for (const TraceImporter *imp : traceImporters()) {
        if (std::string(imp->format()) == "champsim")
            by_champ = imp;
        if (std::string(imp->format()) == "qemu")
            by_qemu = imp;
    }
    ASSERT_NE(by_champ, nullptr);
    ASSERT_NE(by_qemu, nullptr);
    EXPECT_TRUE(by_champ->probe(champ.data(), champ.size(), true));
    EXPECT_FALSE(by_champ->probe(
        reinterpret_cast<const std::uint8_t *>(qemu.data()),
        qemu.size(), true));
    EXPECT_TRUE(by_qemu->probe(
        reinterpret_cast<const std::uint8_t *>(qemu.data()),
        qemu.size(), true));
    EXPECT_FALSE(by_qemu->probe(champ.data(), champ.size(), true));
    EXPECT_EQ(importerByFormat("acictrace")->format(),
              std::string("acictrace"));
    EXPECT_EQ(importerByFormat("no_such_format"), nullptr);
}

TEST(ImportDetection, UnterminatedFinalLineStillAutoDetects)
{
    // EOF falls inside the probe window, so the single line without
    // a trailing newline is complete evidence for the QEMU grammar.
    TempPath fixture("acic_test_nonewline.log");
    TempPath out("acic_test_nonewline.acictrace");
    writeText(fixture.str(), "0, 0x1000, 0x90, \"nop\"");
    const ImportSummary summary =
        importTraceFile(fixture.str(), out.str());
    EXPECT_EQ(summary.format, "qemu");
    EXPECT_EQ(summary.instructions, 1u);
}

TEST(NativeImport, ReencodePreservesStreamAndName)
{
    TempPath recorded("acic_test_native_rec.acictrace");
    TempPath reimported("acic_test_native_re.acictrace");
    auto params = Workloads::byName("web_search");
    params.instructions = 20'000;
    SyntheticWorkload synth(params);
    recordTrace(synth, recorded.str());

    const ImportSummary summary =
        importTraceFile(recorded.str(), reimported.str());
    EXPECT_EQ(summary.format, "acictrace");
    EXPECT_EQ(summary.name, "web_search"); // sniffed, not file stem
    EXPECT_EQ(summary.instructions, 20'000u);

    FileTraceSource a(recorded.str());
    FileTraceSource b(reimported.str());
    EXPECT_EQ(b.name(), "web_search");
    expectSameStream(drain(a), drain(b));
}

TEST(NativeImport, GzippedTraceImportsIdentically)
{
    if (!gzipSupported())
        GTEST_SKIP() << "built without zlib";
    TempPath recorded("acic_test_gztrace.acictrace");
    TempPath gz("acic_test_gztrace.acictrace.gz");
    TempPath out("acic_test_gztrace_out.acictrace");
    auto params = Workloads::byName("tpcc");
    params.instructions = 10'000;
    SyntheticWorkload synth(params);
    recordTrace(synth, recorded.str());
    ASSERT_TRUE(gzipFile(recorded.str(), gz.str()));

    const ImportSummary summary =
        importTraceFile(gz.str(), out.str());
    EXPECT_TRUE(summary.compressed);
    EXPECT_EQ(summary.format, "acictrace");
    FileTraceSource a(recorded.str());
    FileTraceSource b(out.str());
    expectSameStream(drain(a), drain(b));
}

// --------------------------------------------------- writer + stats

TEST(TraceWriterDeath, RejectsNonSeekableOutput)
{
    const char *fifo = "acic_test_fifo";
    std::remove(fifo);
    ASSERT_EQ(mkfifo(fifo, 0600), 0);
    const int reader = open(fifo, O_RDONLY | O_NONBLOCK);
    ASSERT_GE(reader, 0);
    EXPECT_EXIT({ TraceWriter writer(fifo, "unit"); },
                ::testing::ExitedWithCode(1), "not seekable");
    close(reader);
    std::remove(fifo);
}

TEST(TraceStats, CountsMatchHandBuiltStream)
{
    TempPath path("acic_test_stats.acictrace");
    {
        TraceWriter writer(path.str(), "stats");
        writer.append(
            makeInst(0x1000, 0x1004, BranchKind::None, false));
        writer.append(
            makeInst(0x1004, 0x2000, BranchKind::Call, true));
        writer.append(
            makeInst(0x2000, 0x2004, BranchKind::Cond, false));
        writer.append(
            makeInst(0x2004, 0x1008, BranchKind::Return, true));
    }
    FileTraceSource trace(path.str());
    const TraceStats stats = computeTraceStats(trace);
    EXPECT_EQ(stats.name, "stats");
    EXPECT_EQ(stats.instructions, 4u);
    EXPECT_EQ(stats.branches(), 3u);
    EXPECT_EQ(stats.kinds[static_cast<int>(BranchKind::Call)], 1u);
    EXPECT_EQ(stats.kinds[static_cast<int>(BranchKind::Cond)], 1u);
    EXPECT_EQ(stats.kinds[static_cast<int>(BranchKind::Return)],
              1u);
    EXPECT_EQ(stats.taken, 2u);
    EXPECT_EQ(stats.redirects, 2u);
    EXPECT_EQ(stats.uniqueBlocks, 2u); // blocks 0x40 and 0x80
    EXPECT_DOUBLE_EQ(stats.branchDensity(), 0.75);
    // The stat text is path-free and deterministic.
    std::ostringstream a, b;
    printTraceStats(a, stats);
    trace.reset();
    printTraceStats(b, computeTraceStats(trace));
    EXPECT_EQ(a.str(), b.str());
    EXPECT_NE(a.str().find("block reuse distance"),
              std::string::npos);
}

// ----------------------------------------------------------- catalog

TEST(Catalog, BuiltinEnumeratesBothSuites)
{
    const WorkloadCatalog catalog = WorkloadCatalog::builtin();
    EXPECT_EQ(catalog.entries().size(), 15u);
    EXPECT_EQ(catalog.resolve("all").size(), 15u);
    EXPECT_EQ(catalog.resolve("all-datacenter").size(), 10u);
    EXPECT_EQ(catalog.resolve("all-spec").size(), 5u);
    const WorkloadEntry *entry = catalog.find("web_search");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->suite, "datacenter");
    EXPECT_EQ(entry->source, WorkloadSource::Synthetic);
    EXPECT_EQ(catalog.find("no_such_workload"), nullptr);

    const auto picked = catalog.resolve("tpcc,gcc");
    ASSERT_EQ(picked.size(), 2u);
    EXPECT_EQ(picked[0].name(), "tpcc");
    EXPECT_EQ(picked[1].suite, "spec");
}

TEST(CatalogDeath, UnknownNamesAreFatal)
{
    const WorkloadCatalog catalog = WorkloadCatalog::builtin();
    EXPECT_EXIT(catalog.resolve("no_such_workload"),
                ::testing::ExitedWithCode(1), "unknown workload");
    EXPECT_EXIT(catalog.resolve("all-bogus"),
                ::testing::ExitedWithCode(1),
                "unknown workload group");
}

TEST(Catalog, TraceDirOverlaysPresetsAndAddsImports)
{
    // A scratch directory holding one preset-named trace and one
    // new workload.
    const std::string dir = "acic_test_catalog_dir";
    std::filesystem::remove_all(dir);
    ASSERT_TRUE(std::filesystem::create_directory(dir));
    {
        auto params = Workloads::byName("web_search");
        params.instructions = 5'000;
        SyntheticWorkload synth(params);
        recordTrace(synth,
                    dir + "/web_search" + TraceFormat::suffix());
        SyntheticWorkload other(params);
        recordTrace(other,
                    dir + "/captured_prod" + TraceFormat::suffix());
        // A foreign file that must be skipped, not fatal.
        std::ofstream junk(dir + "/junk" + TraceFormat::suffix());
        junk << "not a trace";
    }

    WorkloadCatalog catalog = WorkloadCatalog::builtin();
    EXPECT_EQ(catalog.addTraceDir(dir), 2u);
    EXPECT_EQ(catalog.entries().size(), 16u); // one new name

    // The preset override keeps its suite but becomes a trace file.
    const WorkloadEntry *ws = catalog.find("web_search");
    ASSERT_NE(ws, nullptr);
    EXPECT_EQ(ws->source, WorkloadSource::TraceFile);
    EXPECT_EQ(ws->suite, "datacenter");
    EXPECT_EQ(ws->params.instructions, 5'000u);
    EXPECT_EQ(catalog.resolve("all-datacenter").size(), 10u);

    // The new name lands in the imported suite.
    const auto imported = catalog.resolve("all-imported");
    ASSERT_EQ(imported.size(), 1u);
    EXPECT_EQ(imported[0].name(), "captured_prod");

    // entry.open() yields a working source for both kinds.
    auto opened = ws->open();
    EXPECT_EQ(opened->length(), 5'000u);
    auto synth_entry = catalog.find("tpcc")->open();
    EXPECT_EQ(synth_entry->name(), "tpcc");

    std::filesystem::remove_all(dir);
}

TEST(Catalog, TraceFileEntryRunsIdenticalToDirectRead)
{
    TempPath path("acic_test_entry_run.acictrace");
    auto params = Workloads::byName("media_streaming");
    params.instructions = 30'000;
    SyntheticWorkload synth(params);
    recordTrace(synth, path.str());

    // Direct FileTraceSource read...
    FileTraceSource file(path.str());
    SharedWorkload direct(file);
    const SimResult expected = direct.run("acic");

    // ...equals a TraceFile WorkloadEntry through the driver.
    ExperimentSpec spec;
    spec.workloads = {
        WorkloadEntry::traceFile("media_streaming", path.str())};
    spec.schemes = {parseScheme("acic")};
    spec.threads = 2;
    const auto cells = ExperimentDriver(spec).run();
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_EQ(cells[0].result.cycles, expected.cycles);
    EXPECT_EQ(cells[0].result.l1iMisses, expected.l1iMisses);
    EXPECT_EQ(cells[0].result.instructions, expected.instructions);
}

TEST(Catalog, ImportedQemuTraceRunsThroughDriver)
{
    TempPath fixture("acic_test_drv.log");
    TempPath out("acic_test_drv.acictrace");
    std::vector<TraceInst> expected;
    // A loop over the fixture body, long enough to simulate.
    std::string text;
    for (int rep = 0; rep < 2000; ++rep)
        text += qemuExeclogFixture(expected);
    writeText(fixture.str(), text);
    importTraceFile(fixture.str(), out.str());

    ExperimentSpec spec;
    spec.workloads = {
        WorkloadEntry::traceFile("qemu_loop", out.str())};
    spec.schemes = parseSchemeList("lru,acic");
    spec.threads = 1;
    const auto cells = ExperimentDriver(spec).run();
    ASSERT_EQ(cells.size(), 2u);
    for (const auto &cell : cells) {
        EXPECT_GT(cell.result.cycles, 0u);
        EXPECT_GT(cell.result.instructions, 0u);
    }
}
