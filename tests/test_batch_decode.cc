/**
 * @file
 * Property tests pinning the batched decode paths to the scalar
 * next() reference: for every trace source, decodeBatch() and
 * acquireRun() must consume the identical stream next() would, under
 * arbitrary interleavings, mid-batch seeks, checkpoint/restore at
 * positions that are not a multiple of the batch size, and across
 * file-format versions (v2 indexed, v2 footerless, rewritten v1).
 * Inputs are seeded random traces that exercise every record-tag
 * combination the codec has (linked/unlinked, sequential/redirect,
 * forward/backward deltas), not just well-behaved synthetic streams.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/serialize.hh"
#include "frontend/bundle.hh"
#include "trace/io.hh"
#include "trace/memory.hh"
#include "trace/synthetic.hh"
#include "trace/workload_params.hh"

using namespace acic;

namespace {

class TempTracePath
{
  public:
    explicit TempTracePath(const std::string &tag)
        : path_("acic_batch_" + tag + TraceFormat::suffix())
    {
        std::remove(path_.c_str());
    }
    ~TempTracePath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

/**
 * A seeded random instruction stream hitting every codec tag shape:
 * ~70% linked records (pc continues the chain), ~60% sequential
 * fallthroughs, and the rest jumps with signed deltas both ways.
 */
std::vector<TraceInst>
randomStream(std::uint64_t seed, std::uint64_t n)
{
    Rng rng(seed);
    std::vector<TraceInst> out;
    out.reserve(n);
    Addr prev_next = 0x400000;
    for (std::uint64_t i = 0; i < n; ++i) {
        TraceInst inst;
        inst.pc = rng.chance(0.7)
                      ? prev_next
                      : 0x400000 + rng.nextBelow(1u << 22) * 4;
        inst.kind = static_cast<BranchKind>(rng.nextBelow(5));
        if (rng.chance(0.6)) {
            inst.nextPc = inst.pc + TraceInst::kInstBytes;
            inst.taken = false;
        } else {
            // Forward or backward target, occasionally huge.
            const std::uint64_t span =
                rng.chance(0.1) ? (1u << 30) : (1u << 16);
            inst.nextPc = rng.chance(0.5)
                              ? inst.pc + 4 + rng.nextBelow(span) * 4
                              : inst.pc - rng.nextBelow(span) * 4;
            inst.taken = inst.kind != BranchKind::None;
        }
        out.push_back(inst);
        prev_next = inst.nextPc;
    }
    return out;
}

void
writeStream(const std::vector<TraceInst> &stream,
            const std::string &path, std::uint64_t index_interval)
{
    TraceWriter writer(path, "random", index_interval);
    for (const TraceInst &inst : stream)
        writer.append(inst);
    writer.close();
}

/** Drain a source through decodeBatch() only. */
std::vector<TraceInst>
drainBatched(TraceSource &src)
{
    std::vector<TraceInst> out;
    InstBatch batch;
    while (src.decodeBatch(batch) != 0)
        for (unsigned i = 0; i < batch.count; ++i)
            out.push_back(batch.get(i));
    return out;
}

void
expectSameStream(const std::vector<TraceInst> &a,
                 const std::vector<TraceInst> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].pc, b[i].pc) << "record " << i;
        ASSERT_EQ(a[i].nextPc, b[i].nextPc) << "record " << i;
        ASSERT_EQ(static_cast<int>(a[i].kind),
                  static_cast<int>(b[i].kind))
            << "record " << i;
        ASSERT_EQ(a[i].taken, b[i].taken) << "record " << i;
    }
}

} // namespace

TEST(BatchDecode, BatchedEqualsScalarOnSeededRandomTraces)
{
    for (const std::uint64_t seed : {1u, 7u, 99u}) {
        const auto reference = randomStream(seed, 10'000);
        TempTracePath path("prop" + std::to_string(seed));
        writeStream(reference, path.str(), 1024);

        FileTraceSource scalar(path.str());
        std::vector<TraceInst> via_next;
        TraceInst inst;
        while (scalar.next(inst))
            via_next.push_back(inst);
        expectSameStream(reference, via_next);

        FileTraceSource batched(path.str());
        expectSameStream(reference, drainBatched(batched));
    }
}

TEST(BatchDecode, InterleavedNextAndBatchShareOneCursor)
{
    const auto reference = randomStream(42, 20'000);
    TempTracePath path("interleave");
    writeStream(reference, path.str(), 4096);

    FileTraceSource file(path.str());
    Rng rng(123);
    std::vector<TraceInst> got;
    while (got.size() < reference.size()) {
        if (rng.chance(0.5)) {
            // A random-length scalar pull (possibly zero).
            const std::uint64_t pulls = rng.nextBelow(7);
            TraceInst inst;
            for (std::uint64_t i = 0; i < pulls; ++i)
                if (file.next(inst))
                    got.push_back(inst);
        } else {
            InstBatch batch;
            if (file.decodeBatch(batch) == 0)
                break;
            for (unsigned i = 0; i < batch.count; ++i)
                got.push_back(batch.get(i));
        }
    }
    expectSameStream(reference, got);
}

TEST(BatchDecode, SeekMidBatchRealignsTheBatchedStream)
{
    const auto reference = randomStream(5, 30'000);
    TempTracePath path("seekbatch");
    writeStream(reference, path.str(), 1024);

    FileTraceSource file(path.str());
    // Consume half a batch so the cursor sits mid-buffer, then seek
    // to targets that are deliberately not multiples of 64 (or of
    // the 1024-instruction index interval).
    InstBatch batch;
    ASSERT_EQ(file.decodeBatch(batch), InstBatch::kCapacity);
    for (const std::uint64_t target :
         {std::uint64_t{37}, std::uint64_t{1'000},
          std::uint64_t{1'091}, std::uint64_t{29'999},
          std::uint64_t{17}}) {
        file.seekToInstruction(target);
        ASSERT_GT(file.decodeBatch(batch), 0u) << "at " << target;
        for (unsigned i = 0; i < batch.count; ++i) {
            ASSERT_EQ(batch.get(i).pc, reference[target + i].pc)
                << "target " << target << " record " << i;
            ASSERT_EQ(batch.get(i).nextPc,
                      reference[target + i].nextPc)
                << "target " << target << " record " << i;
        }
    }
}

TEST(BatchDecode, FooterlessAndV1FilesBatchIdentically)
{
    const auto reference = randomStream(11, 8'000);

    // Footerless v2: no index, linear seeks only.
    TempTracePath no_footer("nofooter");
    writeStream(reference, no_footer.str(), 0);
    FileTraceSource footerless(no_footer.str());
    ASSERT_FALSE(footerless.hasIndex());
    expectSameStream(reference, drainBatched(footerless));

    // The same payload with the header version rewritten to 1 — a
    // genuine v1 file, which predates batching entirely.
    TempTracePath v1("v1batch");
    writeStream(reference, v1.str(), 0);
    {
        std::fstream f(v1.str(), std::ios::binary | std::ios::in |
                                     std::ios::out);
        ASSERT_TRUE(f.is_open());
        f.seekp(4);
        const char version1[2] = {1, 0};
        f.write(version1, 2);
    }
    FileTraceSource old(v1.str());
    ASSERT_EQ(old.version(), 1u);
    expectSameStream(reference, drainBatched(old));
}

TEST(BatchDecode, WalkerCheckpointAtNonBatchMultipleResumes)
{
    const auto reference = randomStream(77, 12'000);
    TempTracePath path("walkerckpt");
    writeStream(reference, path.str(), 1024);

    // Walk an odd number of variable-width bundles so the walker's
    // consumed count lands at an arbitrary (non-batch-aligned)
    // instruction; restore must resume mid-batch from there.
    FileTraceSource file_a(path.str());
    BundleWalker walker_a(file_a);
    Bundle bundle;
    for (int i = 0; i < 701; ++i)
        ASSERT_TRUE(walker_a.next(bundle));

    Serializer s;
    walker_a.save(s);

    FileTraceSource file_b(path.str());
    BundleWalker walker_b(file_b);
    Deserializer d(s.bytes());
    walker_b.load(d);

    // Both walkers must now emit the identical remaining bundles.
    Bundle ba, bb;
    int remaining = 0;
    for (;;) {
        const bool more_a = walker_a.next(ba);
        const bool more_b = walker_b.next(bb);
        ASSERT_EQ(more_a, more_b) << "bundle " << remaining;
        if (!more_a)
            break;
        ASSERT_EQ(ba.blk, bb.blk) << "bundle " << remaining;
        ASSERT_EQ(ba.pc, bb.pc) << "bundle " << remaining;
        ASSERT_EQ(ba.count, bb.count) << "bundle " << remaining;
        for (unsigned i = 0; i < ba.count; ++i) {
            ASSERT_EQ(ba.insts[i].pc, bb.insts[i].pc)
                << "bundle " << remaining << " inst " << i;
            ASSERT_EQ(ba.insts[i].nextPc, bb.insts[i].nextPc)
                << "bundle " << remaining << " inst " << i;
        }
        ++remaining;
    }
    ASSERT_GT(remaining, 0);
}

TEST(BatchDecode, MemorySourceRunAndBatchMatchScalar)
{
    const auto reference = randomStream(3, 5'000);
    const TraceImage image =
        std::make_shared<const std::vector<TraceInst>>(reference);

    // decodeBatch drain.
    MemoryTraceSource batched(image, "mem");
    expectSameStream(reference, drainBatched(batched));

    // acquireRun: bounded runs, zero-copy pointers into the image,
    // stream position shared with next().
    MemoryTraceSource runs(image, "mem");
    std::vector<TraceInst> got;
    Rng rng(9);
    while (got.size() < reference.size()) {
        if (rng.chance(0.3)) {
            TraceInst inst;
            if (runs.next(inst))
                got.push_back(inst);
            continue;
        }
        std::uint64_t n = 0;
        const TraceInst *run =
            runs.acquireRun(1 + rng.nextBelow(200), n);
        if (run == nullptr)
            break;
        // Zero-copy: the run aliases the shared image.
        EXPECT_GE(run, image->data());
        EXPECT_LE(run + n, image->data() + image->size());
        for (std::uint64_t i = 0; i < n; ++i)
            got.push_back(run[i]);
    }
    expectSameStream(reference, got);

    // Exhausted source: empty run, then next() agrees.
    std::uint64_t n = 77;
    EXPECT_EQ(runs.acquireRun(64, n), nullptr);
    EXPECT_EQ(n, 0u);
    TraceInst inst;
    EXPECT_FALSE(runs.next(inst));

    // A region cursor's runs stay inside the region.
    MemoryTraceSource region(image, "mem", 1'000, 1'100);
    n = 0;
    const TraceInst *run = region.acquireRun(~std::uint64_t{0}, n);
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(n, 100u);
    EXPECT_EQ(run, image->data() + 1'000);
}

TEST(BatchDecode, DefaultAcquireRunDeclinesWithoutConsuming)
{
    auto params = Workloads::byName("web_search");
    params.instructions = 1'000;
    SyntheticWorkload synth(params);

    // The base-class default must refuse (no contiguous storage) and
    // consume nothing: the stream then plays out in full via next().
    std::uint64_t n = 42;
    EXPECT_EQ(synth.acquireRun(~std::uint64_t{0}, n), nullptr);
    EXPECT_EQ(n, 0u);
    std::uint64_t count = 0;
    TraceInst inst;
    while (synth.next(inst))
        ++count;
    EXPECT_EQ(count, 1'000u);
}
