/**
 * @file
 * End-to-end battery for the distributed sweep machinery, exercised
 * through the installed `acic_run` binary exactly as an operator
 * would drive it:
 *
 *  - crash injection: SIGKILL a checkpointing sweep partway, restart
 *    it, and demand the merged results match an uninterrupted run
 *    with no duplicate and no missing cells;
 *  - shard/merge equivalence: three `--shard i/3` processes plus
 *    `acic_run merge` must reproduce the monolithic sweep's CSV and
 *    JSON byte-for-byte;
 *  - corrupted checkpoints: a bit-flipped or truncated completed-cell
 *    file must fail the rerun loudly (nonzero exit, CRC/truncation
 *    diagnostic) rather than feed silently wrong stats downstream.
 *
 * host_seconds is wall-clock and therefore differs between
 * independent processes; comparisons against an *independent* clean
 * run strip that column. The shard -> merge round trip itself
 * preserves it exactly, so merged-vs-shard comparisons don't strip.
 *
 * POSIX-only (fork/exec/kill); the whole file is compiled out on
 * Windows.
 */

#ifndef _WIN32

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fs = std::filesystem;

namespace {

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

/** Run @p cmd through the shell; return its exit status (or -1 if it
 *  died on a signal / could not spawn). */
int
runCommand(const std::string &cmd)
{
    const int status = std::system(cmd.c_str());
    if (status == -1 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

/** Drop the trailing host_seconds column from every CSV line. */
std::string
stripHostSecondsCsv(const std::string &csv)
{
    std::istringstream in(csv);
    std::string line, out;
    while (std::getline(in, line)) {
        const std::size_t comma = line.rfind(',');
        out += comma == std::string::npos ? line
                                          : line.substr(0, comma);
        out += '\n';
    }
    return out;
}

/** Drop the host_seconds line of every cell object. */
std::string
stripHostSecondsJson(const std::string &json)
{
    std::istringstream in(json);
    std::string line, out;
    while (std::getline(in, line)) {
        if (line.find("\"host_seconds\"") != std::string::npos)
            continue;
        out += line;
        out += '\n';
    }
    return out;
}

/** The shared 2x2 sweep every test here runs. */
std::string
sweepCommand(const std::string &instructions)
{
    return std::string(ACIC_RUN_BIN) +
           " sweep --workloads web_search,tpcc --grid lru,acic"
           " --threads 1 --instructions " +
           instructions;
}

/** (workload, scheme) pairs of the CSV body, for duplicate checks. */
std::vector<std::string>
csvCellLabels(const std::string &csv)
{
    std::istringstream in(csv);
    std::string line;
    std::vector<std::string> labels;
    bool header = true;
    while (std::getline(in, line)) {
        if (header) {
            header = false;
            continue;
        }
        const std::size_t first = line.find(',');
        const std::size_t second = line.find(',', first + 1);
        labels.push_back(line.substr(0, second));
    }
    return labels;
}

struct ScratchDir
{
    explicit ScratchDir(std::string path) : path(std::move(path))
    {
        fs::remove_all(this->path);
        fs::create_directories(this->path);
    }
    ~ScratchDir() { fs::remove_all(path); }
    std::string file(const std::string &name) const
    {
        return (fs::path(path) / name).string();
    }
    std::string path;
};

} // namespace

TEST(ShardMergeCli, ThreeShardsMergeBitIdenticalToMonolithic)
{
    const ScratchDir dir("acic_test_cli_shard");
    const std::string monoCsv = dir.file("mono.csv");
    const std::string monoJson = dir.file("mono.json");
    ASSERT_EQ(runCommand(sweepCommand("40000") + " --csv " + monoCsv +
                         " --json " + monoJson + " >/dev/null 2>&1"),
              0);

    std::vector<std::string> shardJsons;
    for (int i = 0; i < 3; ++i) {
        const std::string out =
            dir.file("shard" + std::to_string(i) + ".json");
        shardJsons.push_back(out);
        ASSERT_EQ(runCommand(sweepCommand("40000") + " --shard " +
                             std::to_string(i) + "/3 --json " + out +
                             " >/dev/null 2>&1"),
                  0)
            << "shard " << i << " failed";
    }

    const std::string mergedCsv = dir.file("merged.csv");
    const std::string mergedJson = dir.file("merged.json");
    ASSERT_EQ(runCommand(std::string(ACIC_RUN_BIN) + " merge " +
                         shardJsons[0] + ' ' + shardJsons[1] + ' ' +
                         shardJsons[2] + " --csv " + mergedCsv +
                         " --json " + mergedJson +
                         " >/dev/null 2>&1"),
              0);

    // Independent processes: wall-clock host_seconds differs, all
    // simulated counters must not.
    EXPECT_EQ(stripHostSecondsCsv(readAll(mergedCsv)),
              stripHostSecondsCsv(readAll(monoCsv)));
    EXPECT_EQ(stripHostSecondsJson(readAll(mergedJson)),
              stripHostSecondsJson(readAll(monoJson)));

    // Partial inputs must not merge: feeding only two of the three
    // shards has to name the missing cells, not emit a partial CSV.
    const std::string err = dir.file("merge.stderr");
    EXPECT_EQ(runCommand(std::string(ACIC_RUN_BIN) + " merge " +
                         shardJsons[0] + ' ' + shardJsons[1] +
                         " >/dev/null 2>" + err),
              1);
    EXPECT_NE(readAll(err).find("missing"), std::string::npos)
        << "stderr was: " << readAll(err);

    // Nor may a duplicated shard double-count its cells.
    EXPECT_EQ(runCommand(std::string(ACIC_RUN_BIN) + " merge " +
                         shardJsons[0] + ' ' + shardJsons[0] + ' ' +
                         shardJsons[1] + ' ' + shardJsons[2] +
                         " >/dev/null 2>" + err),
              1);
    EXPECT_NE(readAll(err).find("already provided"),
              std::string::npos)
        << "stderr was: " << readAll(err);
}

TEST(CrashInjectionCli, SigkilledSweepResumesToIdenticalResults)
{
    const ScratchDir dir("acic_test_cli_crash");
    const std::string ckpt = dir.file("ckpt");
    const std::string crashCsv = dir.file("crash.csv");
    const std::string cleanCsv = dir.file("clean.csv");

    // Reference: the same sweep, uninterrupted, no checkpointing.
    ASSERT_EQ(runCommand(sweepCommand("200000") + " --csv " +
                         cleanCsv + " >/dev/null 2>&1"),
              0);

    // Launch the checkpointing sweep as a child we can SIGKILL. The
    // long trace (~50ms+ per cell) and the 2ms poll below make it
    // overwhelmingly likely the kill lands mid-sweep; if the child
    // somehow finishes first the test degrades to a (still valid)
    // resume-from-complete check.
    const pid_t pid = fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
        const int devnull = ::open("/dev/null", O_WRONLY);
        ::dup2(devnull, 1);
        ::dup2(devnull, 2);
        ::execl(ACIC_RUN_BIN, "acic_run", "sweep", "--workloads",
                "web_search,tpcc", "--grid", "lru,acic", "--threads",
                "1", "--instructions", "200000", "--checkpoint-dir",
                ckpt.c_str(), "--checkpoint-every", "20000", "--csv",
                crashCsv.c_str(), static_cast<char *>(nullptr));
        _exit(127);
    }

    // Kill as soon as the first completed cell is published, so the
    // restart must both preload finished cells and resume/redo the
    // rest.
    const fs::path cellsDir = fs::path(ckpt) / "cells";
    bool childExited = false;
    for (int i = 0; i < 30'000; ++i) { // <= 60 s
        std::error_code ec;
        if (fs::exists(cellsDir, ec) && !fs::is_empty(cellsDir, ec))
            break;
        int status = 0;
        if (::waitpid(pid, &status, WNOHANG) == pid) {
            childExited = true;
            break;
        }
        ::usleep(2'000);
    }
    if (!childExited) {
        ASSERT_EQ(::kill(pid, SIGKILL), 0);
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFSIGNALED(status));
    }
    ASSERT_TRUE(fs::exists(cellsDir))
        << "sweep died before publishing its first cell";

    // Restart the identical command in a fresh process; it must
    // finish the sweep from the checkpoint directory.
    ASSERT_EQ(runCommand(sweepCommand("200000") + " --checkpoint-dir " +
                         ckpt + " --checkpoint-every 20000 --csv " +
                         crashCsv + " >/dev/null 2>&1"),
              0);

    const std::string crashed = readAll(crashCsv);
    EXPECT_EQ(stripHostSecondsCsv(crashed),
              stripHostSecondsCsv(readAll(cleanCsv)));

    // Exactly-once: every cell of the 2x2 matrix appears exactly one
    // time — a resume bug would duplicate or drop rows.
    const std::vector<std::string> labels = csvCellLabels(crashed);
    EXPECT_EQ(labels.size(), 4u);
    EXPECT_EQ(std::set<std::string>(labels.begin(), labels.end())
                  .size(),
              4u);

    // The finished run leaves no in-flight snapshots behind.
    const fs::path inflight = fs::path(ckpt) / "inflight";
    ASSERT_TRUE(fs::exists(inflight));
    EXPECT_TRUE(fs::is_empty(inflight));
}

TEST(CorruptCheckpointCli, BitFlipAndTruncationFailTheRerunLoudly)
{
    const ScratchDir dir("acic_test_cli_corrupt");
    const std::string ckpt = dir.file("ckpt");
    const std::string csv = dir.file("out.csv");
    const std::string cmd = sweepCommand("40000") +
                            " --checkpoint-dir " + ckpt + " --csv " +
                            csv;
    ASSERT_EQ(runCommand(cmd + " >/dev/null 2>&1"), 0);

    // Pick a deterministic victim among the completed-cell files.
    std::vector<std::string> cells;
    for (const auto &entry :
         fs::directory_iterator(fs::path(ckpt) / "cells"))
        cells.push_back(entry.path().string());
    ASSERT_EQ(cells.size(), 4u);
    std::sort(cells.begin(), cells.end());
    const std::string victim = cells.front();
    const std::string pristine = readAll(victim);
    ASSERT_GT(pristine.size(), 32u);

    const auto rerunFailsWith = [&](const std::string &needle) {
        const std::string err = dir.file("rerun.stderr");
        EXPECT_EQ(runCommand(cmd + " >/dev/null 2>" + err), 1);
        const std::string captured = readAll(err);
        EXPECT_NE(captured.find(needle), std::string::npos)
            << "stderr was: " << captured;
    };

    // Bit-flip inside the payload: the CRC must catch it and the
    // rerun must refuse to trust (or silently resimulate over) the
    // poisoned cell.
    {
        std::string bytes = pristine;
        bytes[30] = static_cast<char>(bytes[30] ^ 0x40);
        std::ofstream(victim, std::ios::binary | std::ios::trunc)
            << bytes;
    }
    rerunFailsWith("CRC");

    // Truncation — a torn copy or full disk — is diagnosed as such.
    std::ofstream(victim, std::ios::binary | std::ios::trunc)
        << pristine.substr(0, 10);
    rerunFailsWith("truncated");

    // Restoring the pristine bytes heals the directory: the rerun
    // preloads every cell and reproduces the original CSV exactly
    // (same process count is irrelevant — preloaded host_seconds are
    // part of the cell file, so not even that column changes).
    const std::string before = readAll(csv);
    std::ofstream(victim, std::ios::binary | std::ios::trunc)
        << pristine;
    ASSERT_EQ(runCommand(cmd + " >/dev/null 2>&1"), 0);
    EXPECT_EQ(readAll(csv), before);
}

#endif // _WIN32
