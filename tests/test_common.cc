/**
 * @file
 * Unit and property tests of the foundation module: PRNG determinism
 * and distributions, saturating counters, Fenwick tree vs. a naive
 * reference, histograms, statistics, and the table printer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>
#include <vector>

#include "common/fenwick.hh"
#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

using namespace acic;

TEST(Types, BlockArithmetic)
{
    EXPECT_EQ(blockOf(0), 0u);
    EXPECT_EQ(blockOf(63), 0u);
    EXPECT_EQ(blockOf(64), 1u);
    EXPECT_EQ(blockBase(3), 192u);
    EXPECT_EQ(blockOffset(0x47), 0x7u);
    EXPECT_EQ(blockOf(blockBase(12345)), 12345u);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Rng, NextBelowStaysInBound)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = rng.nextRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(15);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
}

TEST(Rng, GeometricMeanRoughlyMatches)
{
    Rng rng(17);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(0.25));
    EXPECT_NEAR(sum / n, 4.0, 0.2);
}

TEST(Rng, GeometricRespectsCap)
{
    Rng rng(19);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LE(rng.geometric(0.01, 8), 8u);
}

TEST(Zipf, SamplesAllRanksAtLowSkew)
{
    Rng rng(21);
    ZipfSampler zipf(32, 0.1);
    std::vector<int> counts(32, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf.sample(rng)];
    for (const int c : counts)
        EXPECT_GT(c, 0);
}

TEST(Zipf, SkewPrefersLowRanks)
{
    Rng rng(23);
    ZipfSampler zipf(64, 1.0);
    std::vector<int> counts(64, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf.sample(rng)];
    EXPECT_GT(counts[0], counts[63] * 5);
}

TEST(Zipf, MassSumsToOne)
{
    ZipfSampler zipf(16, 0.7);
    double total = 0;
    for (std::size_t r = 0; r < zipf.size(); ++r)
        total += zipf.mass(r);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SatCounter, SaturatesAtBounds)
{
    SatCounter ctr(2, 0);
    EXPECT_EQ(ctr.maxValue(), 3u);
    for (int i = 0; i < 10; ++i)
        ctr.increment();
    EXPECT_EQ(ctr.value(), 3u);
    for (int i = 0; i < 10; ++i)
        ctr.decrement();
    EXPECT_EQ(ctr.value(), 0u);
}

TEST(SatCounter, MsbSemantics)
{
    SatCounter ctr(3, 0); // max 7, msb set when > 3
    EXPECT_FALSE(ctr.msbSet());
    ctr.set(4);
    EXPECT_TRUE(ctr.msbSet());
    ctr.set(3);
    EXPECT_FALSE(ctr.msbSet());
}

TEST(SatCounter, InitialClamped)
{
    SatCounter ctr(2, 99);
    EXPECT_EQ(ctr.value(), 3u);
}

class FenwickProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FenwickProperty, MatchesNaivePrefixSums)
{
    const unsigned seed = GetParam();
    Rng rng(seed);
    const std::size_t n = 200;
    FenwickTree tree(n);
    std::vector<std::int64_t> naive(n, 0);
    for (int step = 0; step < 500; ++step) {
        const std::size_t i = rng.nextBelow(n);
        const std::int32_t delta =
            static_cast<std::int32_t>(rng.nextRange(0, 10)) - 5;
        tree.add(i, delta);
        naive[i] += delta;
        const std::size_t q = rng.nextBelow(n);
        const std::int64_t expected = std::accumulate(
            naive.begin(), naive.begin() + static_cast<long>(q) + 1,
            std::int64_t{0});
        ASSERT_EQ(tree.prefixSum(q), expected);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FenwickProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Fenwick, RangeSumAndEmptyRange)
{
    FenwickTree tree(16);
    tree.add(3, 5);
    tree.add(7, 2);
    EXPECT_EQ(tree.rangeSum(0, 15), 7);
    EXPECT_EQ(tree.rangeSum(4, 6), 0);
    EXPECT_EQ(tree.rangeSum(3, 3), 5);
    EXPECT_EQ(tree.rangeSum(9, 4), 0); // inverted => empty
}

TEST(Histogram, PaperBucketsClassifyCorrectly)
{
    Histogram hist({0, 16, 512, 1024, 10000});
    EXPECT_EQ(hist.bucketOf(0), 0u);
    EXPECT_EQ(hist.bucketOf(1), 1u);
    EXPECT_EQ(hist.bucketOf(16), 1u);
    EXPECT_EQ(hist.bucketOf(17), 2u);
    EXPECT_EQ(hist.bucketOf(512), 2u);
    EXPECT_EQ(hist.bucketOf(1024), 3u);
    EXPECT_EQ(hist.bucketOf(10000), 4u);
    EXPECT_EQ(hist.bucketOf(10001), 5u);
}

TEST(Histogram, PercentagesSumTo100)
{
    Histogram hist({10, 20, 30});
    Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        hist.record(static_cast<std::int64_t>(rng.nextBelow(50)));
    double total = 0;
    for (std::size_t b = 0; b < hist.buckets(); ++b)
        total += hist.percent(b);
    EXPECT_NEAR(total, 100.0, 1e-9);
    EXPECT_EQ(hist.total(), 1000u);
}

TEST(Histogram, WeightedRecordAndClear)
{
    Histogram hist({5});
    hist.record(1, 10);
    hist.record(100, 30);
    EXPECT_EQ(hist.count(0), 10u);
    EXPECT_EQ(hist.count(1), 30u);
    hist.clear();
    EXPECT_EQ(hist.total(), 0u);
}

TEST(Stats, BumpSetGetRatio)
{
    StatSet stats;
    stats.bump("a");
    stats.bump("a", 4);
    stats.set("b", 10);
    EXPECT_EQ(stats.get("a"), 5u);
    EXPECT_EQ(stats.get("missing"), 0u);
    EXPECT_TRUE(stats.has("b"));
    EXPECT_FALSE(stats.has("missing"));
    EXPECT_DOUBLE_EQ(stats.ratio("a", "b"), 0.5);
    EXPECT_DOUBLE_EQ(stats.ratio("a", "missing"), 0.0);
}

TEST(Stats, HandleBumpSetGet)
{
    StatSet stats;
    const StatHandle a = stats.handle("a");
    const StatHandle b = stats.handle("b");
    stats.bump(a);
    stats.bump(a, 4);
    stats.set(b, 10);
    EXPECT_EQ(stats.get(a), 5u);
    EXPECT_EQ(stats.get(b), 10u);
    EXPECT_EQ(stats.get("a"), 5u);
    // Interning is idempotent: the same name is the same counter.
    stats.bump(stats.handle("a"));
    EXPECT_EQ(stats.get(a), 6u);
}

TEST(Stats, RegisteredButUnwrittenCountersStayHidden)
{
    StatSet stats;
    stats.handle("never_touched");
    const StatHandle hit = stats.handle("hit");
    EXPECT_FALSE(stats.has("never_touched"));
    EXPECT_EQ(stats.raw().size(), 0u);

    stats.bump(hit);
    EXPECT_TRUE(stats.has("hit"));
    EXPECT_FALSE(stats.has("never_touched"));
    const auto raw = stats.raw();
    ASSERT_EQ(raw.size(), 1u);
    EXPECT_EQ(raw.count("hit"), 1u);

    // A zero-delta bump still creates the counter, as the map-based
    // StatSet did (operator[] insertion).
    stats.bump("never_touched", 0);
    EXPECT_TRUE(stats.has("never_touched"));
    EXPECT_EQ(stats.raw().size(), 2u);
}

TEST(Stats, CopyPreservesHandlesAndClearKeepsRegistration)
{
    StatSet stats;
    const StatHandle h = stats.handle("x");
    stats.bump(h, 7);

    // Snapshot copies keep the index layout (the simulator's
    // warm-up subtraction depends on this).
    StatSet snap = stats;
    stats.bump(h, 5);
    EXPECT_EQ(stats.get(h) - snap.get(h), 5u);

    stats.clear();
    EXPECT_FALSE(stats.has("x"));
    EXPECT_TRUE(stats.raw().empty());
    stats.bump(h, 3); // handle survives clear()
    EXPECT_EQ(stats.get("x"), 3u);
}

TEST(Stats, DumpSortsByNameAndHonorsPrefix)
{
    StatSet stats;
    // Register out of order; dump must sort by name regardless.
    stats.bump("b.second");
    stats.bump("a.first", 2);
    stats.handle("z.unwritten");
    std::ostringstream out;
    stats.dump(out, "org.");
    EXPECT_EQ(out.str(), "org.a.first 2\norg.b.second 1\n");
}

TEST(Table, RendersAlignedRowsAndNotes)
{
    TablePrinter table("T");
    table.setHeader({"col1", "c2"});
    table.addRow({"x", "1.00"});
    table.addNote("hello");
    const std::string out = table.str();
    EXPECT_NE(out.find("== T =="), std::string::npos);
    EXPECT_NE(out.find("col1"), std::string::npos);
    EXPECT_NE(out.find("note: hello"), std::string::npos);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TablePrinter::pct(0.1814), "18.14%");
    EXPECT_EQ(TablePrinter::pct(-0.0063), "-0.63%");
}
